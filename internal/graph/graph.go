// Package graph implements the AAA algorithm model: a data-flow graph of
// operations connected by data-dependencies.
//
// Following the paper (Section 4.2), operations come in three kinds:
//
//   - comp: pure computation, no internal state, no side effect ("safe");
//     it may be replicated at will.
//   - mem: register-like memory holding a value between two iterations
//     ("memory-safe"); its output precedes its input, so edges *into* a mem
//     are delayed by one iteration and do not constrain intra-iteration
//     ordering.
//   - extio: external input/output bound to a sensor or actuator ("unsafe");
//     an input extio has no predecessors, an output extio has no successors.
//
// The graph is executed repeatedly, once per iteration of the reactive loop.
// Within one iteration it must be acyclic once delayed edges are removed.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Kind identifies the class of an operation.
type Kind int

// Operation kinds, in the paper's terminology.
const (
	KindComp Kind = iota + 1
	KindMem
	KindExtIO
)

// String returns the paper's name for the kind.
func (k Kind) String() string {
	switch k {
	case KindComp:
		return "comp"
	case KindMem:
		return "mem"
	case KindExtIO:
		return "extio"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Op is a vertex of the algorithm graph.
type Op struct {
	name string
	kind Kind
}

// Name returns the unique name of the operation.
func (o *Op) Name() string { return o.name }

// Kind returns the operation's kind.
func (o *Op) Kind() Kind { return o.kind }

// Safe reports whether the operation may be freely replicated (Section 5.4):
// comps are safe, mems are memory-safe (replicable with identical initial
// values), extios are unsafe (replication restricted by the hardware they
// drive, expressed through the distribution constraints).
func (o *Op) Safe() bool { return o.kind != KindExtIO }

// EdgeKey identifies a data-dependency by the names of its endpoints.
type EdgeKey struct {
	Src string
	Dst string
}

// String renders the dependency as "src->dst".
func (e EdgeKey) String() string { return e.Src + "->" + e.Dst }

// Edge is a data-dependency of the algorithm graph.
type Edge struct {
	key     EdgeKey
	delayed bool
}

// Key returns the (src, dst) pair identifying the edge.
func (e *Edge) Key() EdgeKey { return e.key }

// Src returns the producing operation's name.
func (e *Edge) Src() string { return e.key.Src }

// Dst returns the consuming operation's name.
func (e *Edge) Dst() string { return e.key.Dst }

// Delayed reports whether the dependency crosses an iteration boundary.
// Edges into a mem are delayed: they carry the state update for the next
// iteration and do not constrain start dates within the current one.
func (e *Edge) Delayed() bool { return e.delayed }

// Graph is a mutable algorithm graph. The zero value is not usable; create
// one with New. All mutating methods return an error instead of panicking so
// graphs can be built from untrusted inputs (files, generators).
type Graph struct {
	name  string
	ops   map[string]*Op
	order []string // insertion order, for deterministic iteration
	edges map[EdgeKey]*Edge
	succs map[string][]string // insertion-ordered successor names
	preds map[string][]string // insertion-ordered predecessor names
}

// New returns an empty algorithm graph with the given name.
func New(name string) *Graph {
	return &Graph{
		name:  name,
		ops:   make(map[string]*Op),
		edges: make(map[EdgeKey]*Edge),
		succs: make(map[string][]string),
		preds: make(map[string][]string),
	}
}

// Name returns the graph's name.
func (g *Graph) Name() string { return g.name }

// AddComp adds a pure computation operation.
func (g *Graph) AddComp(name string) error { return g.add(name, KindComp) }

// AddMem adds a memory (register) operation.
func (g *Graph) AddMem(name string) error { return g.add(name, KindMem) }

// AddExtIO adds an external input/output operation. Whether it is a sensor
// (input) or an actuator (output) is determined by its position in the graph:
// sources are inputs, sinks are outputs (validated by Validate).
func (g *Graph) AddExtIO(name string) error { return g.add(name, KindExtIO) }

func (g *Graph) add(name string, k Kind) error {
	if name == "" {
		return errors.New("graph: operation name must not be empty")
	}
	if _, ok := g.ops[name]; ok {
		return fmt.Errorf("graph: duplicate operation %q", name)
	}
	g.ops[name] = &Op{name: name, kind: k}
	g.order = append(g.order, name)
	return nil
}

// Connect adds the data-dependency src->dst. If dst is a mem, the edge is
// automatically delayed (the mem consumes the value at the next iteration).
func (g *Graph) Connect(src, dst string) error {
	so, ok := g.ops[src]
	if !ok {
		return fmt.Errorf("graph: connect %s->%s: unknown operation %q", src, dst, src)
	}
	do, ok := g.ops[dst]
	if !ok {
		return fmt.Errorf("graph: connect %s->%s: unknown operation %q", src, dst, dst)
	}
	if src == dst {
		return fmt.Errorf("graph: self-dependency on %q", src)
	}
	key := EdgeKey{Src: src, Dst: dst}
	if _, ok := g.edges[key]; ok {
		return fmt.Errorf("graph: duplicate dependency %s", key)
	}
	_ = so
	g.edges[key] = &Edge{key: key, delayed: do.kind == KindMem}
	g.succs[src] = append(g.succs[src], dst)
	g.preds[dst] = append(g.preds[dst], src)
	return nil
}

// NumOps returns the number of operations.
func (g *Graph) NumOps() int { return len(g.ops) }

// NumEdges returns the number of data-dependencies.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Op returns the named operation, or nil if absent.
func (g *Graph) Op(name string) *Op { return g.ops[name] }

// HasOp reports whether the named operation exists.
func (g *Graph) HasOp(name string) bool { _, ok := g.ops[name]; return ok }

// Ops returns all operations in insertion order.
func (g *Graph) Ops() []*Op {
	out := make([]*Op, 0, len(g.order))
	for _, n := range g.order {
		out = append(out, g.ops[n])
	}
	return out
}

// OpNames returns all operation names in insertion order.
func (g *Graph) OpNames() []string {
	out := make([]string, len(g.order))
	copy(out, g.order)
	return out
}

// Edge returns the edge with the given key, or nil if absent.
func (g *Graph) Edge(key EdgeKey) *Edge { return g.edges[key] }

// Edges returns all data-dependencies, ordered by source insertion order then
// destination insertion order (deterministic).
func (g *Graph) Edges() []*Edge {
	out := make([]*Edge, 0, len(g.edges))
	for _, src := range g.order {
		for _, dst := range g.succs[src] {
			out = append(out, g.edges[EdgeKey{Src: src, Dst: dst}])
		}
	}
	return out
}

// Succs returns the names of the successors of op, in insertion order.
func (g *Graph) Succs(op string) []string {
	out := make([]string, len(g.succs[op]))
	copy(out, g.succs[op])
	return out
}

// Preds returns the names of the predecessors of op, in insertion order.
func (g *Graph) Preds(op string) []string {
	out := make([]string, len(g.preds[op]))
	copy(out, g.preds[op])
	return out
}

// StrictPreds returns the predecessors of op through non-delayed edges only:
// the operations that must complete before op can start within one iteration.
func (g *Graph) StrictPreds(op string) []string {
	out := make([]string, 0, len(g.preds[op]))
	for _, p := range g.preds[op] {
		if !g.edges[EdgeKey{Src: p, Dst: op}].delayed {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// StrictSuccs returns the successors of op through non-delayed edges only.
func (g *Graph) StrictSuccs(op string) []string {
	out := make([]string, 0, len(g.succs[op]))
	for _, s := range g.succs[op] {
		if !g.edges[EdgeKey{Src: op, Dst: s}].delayed {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Sources returns, in insertion order, the operations with no predecessor at
// all (the external input interface plus parentless computations).
func (g *Graph) Sources() []string {
	var out []string
	for _, n := range g.order {
		if len(g.preds[n]) == 0 {
			out = append(out, n)
		}
	}
	return out
}

// Sinks returns, in insertion order, the operations with no successor.
func (g *Graph) Sinks() []string {
	var out []string
	for _, n := range g.order {
		if len(g.succs[n]) == 0 {
			out = append(out, n)
		}
	}
	return out
}

// Inputs returns the extio operations acting as sensors (no predecessors).
func (g *Graph) Inputs() []string {
	var out []string
	for _, n := range g.Sources() {
		if g.ops[n].kind == KindExtIO {
			out = append(out, n)
		}
	}
	return out
}

// Outputs returns the extio operations acting as actuators (no successors).
func (g *Graph) Outputs() []string {
	var out []string
	for _, n := range g.Sinks() {
		if g.ops[n].kind == KindExtIO {
			out = append(out, n)
		}
	}
	return out
}

// TopoOrder returns a deterministic topological order of the operations with
// respect to non-delayed edges (Kahn's algorithm; ties resolved by insertion
// order). It returns an error if the non-delayed subgraph has a cycle.
func (g *Graph) TopoOrder() ([]string, error) {
	indeg := make(map[string]int, len(g.ops))
	for _, n := range g.order {
		indeg[n] = len(g.StrictPreds(n))
	}
	// ready is kept sorted by insertion index for determinism.
	idx := make(map[string]int, len(g.order))
	for i, n := range g.order {
		idx[n] = i
	}
	var ready []string
	for _, n := range g.order {
		if indeg[n] == 0 {
			ready = append(ready, n)
		}
	}
	out := make([]string, 0, len(g.ops))
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		out = append(out, n)
		var unlocked []string
		for _, s := range g.StrictSuccs(n) {
			indeg[s]--
			if indeg[s] == 0 {
				unlocked = append(unlocked, s)
			}
		}
		ready = append(ready, unlocked...)
		sort.Slice(ready, func(i, j int) bool { return idx[ready[i]] < idx[ready[j]] })
	}
	if len(out) != len(g.ops) {
		return nil, fmt.Errorf("graph %q: cycle among non-delayed dependencies", g.name)
	}
	return out, nil
}

// Validate checks the structural well-formedness of the graph:
// it must be non-empty, acyclic w.r.t. non-delayed edges, extio operations
// must be pure sources or pure sinks, and mem operations must have at least
// one consumer (a write-only register is a specification error).
func (g *Graph) Validate() error {
	if len(g.ops) == 0 {
		return fmt.Errorf("graph %q: no operations", g.name)
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	for _, n := range g.order {
		op := g.ops[n]
		switch op.kind {
		case KindExtIO:
			in, out := len(g.preds[n]), len(g.succs[n])
			if in > 0 && out > 0 {
				return fmt.Errorf("graph %q: extio %q has both predecessors and successors; it must be a sensor (source) or an actuator (sink)", g.name, n)
			}
			if in == 0 && out == 0 {
				return fmt.Errorf("graph %q: extio %q is disconnected", g.name, n)
			}
		case KindMem:
			if len(g.succs[n]) == 0 {
				return fmt.Errorf("graph %q: mem %q has no consumer", g.name, n)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.name)
	for _, n := range g.order {
		// add cannot fail on names already validated in g.
		_ = c.add(n, g.ops[n].kind)
	}
	for _, e := range g.Edges() {
		_ = c.Connect(e.Src(), e.Dst())
	}
	return c
}
