// Package paperex provides the worked examples of the paper as ready-made
// (algorithm, architecture, constraints) triples:
//
//   - Fig. 13: the 7-operation graph I→A→{B,C,D}→E→O on three processors
//     sharing one bus (first solution's example, Sections 5.4 and 6.5);
//   - Fig. 21: the same graph on a fully connected point-to-point triangle
//     (second solution's example, Section 7.3).
//
// The cost tables follow the paper; where the source text is ambiguous the
// values documented in DESIGN.md §2 are used.
package paperex

import (
	"fmt"

	"ftsched/internal/arch"
	"ftsched/internal/graph"
	"ftsched/internal/spec"
)

// Instance bundles one scheduling problem.
type Instance struct {
	Graph *graph.Graph
	Arch  *arch.Architecture
	Spec  *spec.Spec
	// K is the failure count used in the paper's example (1).
	K int
}

// OpNames lists the example's operations in the paper's column order.
var OpNames = []string{"I", "A", "B", "C", "D", "E", "O"}

// execTable holds Δ(op, proc) per DESIGN.md §2; spec.Inf marks forbidden
// placements (the extios I and O are wired to P1 and P2 only).
var execTable = map[string][3]float64{
	"I": {1, 1, inf},
	"A": {2, 2, 2},
	"B": {3, 1.5, 1.5},
	"C": {2, 3, 1},
	"D": {3, 1, 1},
	"E": {1, 1, 1},
	"O": {1.5, 1.5, inf},
}

// commTable holds the per-dependency transfer durations, identical on every
// link as in the paper's tables.
var commTable = map[graph.EdgeKey]float64{
	{Src: "I", Dst: "A"}: 1.25,
	{Src: "A", Dst: "B"}: 0.5,
	{Src: "A", Dst: "C"}: 0.5,
	{Src: "A", Dst: "D"}: 0.5,
	{Src: "B", Dst: "E"}: 0.6,
	{Src: "C", Dst: "E"}: 0.8,
	{Src: "D", Dst: "E"}: 1,
	{Src: "E", Dst: "O"}: 1,
}

var inf = spec.Inf

// Algorithm builds the paper's algorithm graph (Fig. 7 / Fig. 13(a)).
func Algorithm() *graph.Graph {
	g := graph.New("paper")
	mustOK(g.AddExtIO("I"))
	mustOK(g.AddComp("A"))
	mustOK(g.AddComp("B"))
	mustOK(g.AddComp("C"))
	mustOK(g.AddComp("D"))
	mustOK(g.AddComp("E"))
	mustOK(g.AddExtIO("O"))
	for _, e := range [][2]string{
		{"I", "A"}, {"A", "B"}, {"A", "C"}, {"A", "D"},
		{"B", "E"}, {"C", "E"}, {"D", "E"}, {"E", "O"},
	} {
		mustOK(g.Connect(e[0], e[1]))
	}
	return g
}

// BusArch builds Fig. 13(b): P1, P2, P3 on a single multi-point bus.
func BusArch() *arch.Architecture {
	a := arch.New("bus3")
	for _, p := range []string{"P1", "P2", "P3"} {
		mustOK(a.AddProcessor(p))
	}
	mustOK(a.AddBus("bus", "P1", "P2", "P3"))
	return a
}

// TriangleArch builds Fig. 21(b): P1, P2, P3 fully connected by three
// point-to-point links.
func TriangleArch() *arch.Architecture {
	a := arch.New("tri3")
	for _, p := range []string{"P1", "P2", "P3"} {
		mustOK(a.AddProcessor(p))
	}
	mustOK(a.AddLink("L12", "P1", "P2"))
	mustOK(a.AddLink("L23", "P2", "P3"))
	mustOK(a.AddLink("L13", "P1", "P3"))
	return a
}

// newSpec fills the constraint tables for the given architecture.
func newSpec(g *graph.Graph, a *arch.Architecture) *spec.Spec {
	sp := spec.New()
	procs := a.ProcessorNames()
	for op, row := range execTable {
		for i, p := range procs {
			mustOK(sp.SetExec(op, p, row[i]))
		}
	}
	for _, e := range g.Edges() {
		mustOK(sp.SetCommUniform(a, e.Key(), commTable[e.Key()]))
	}
	return sp
}

// BusInstance returns the first solution's example (Section 6.5).
func BusInstance() *Instance {
	g := Algorithm()
	a := BusArch()
	return &Instance{Graph: g, Arch: a, Spec: newSpec(g, a), K: 1}
}

// TriangleInstance returns the second solution's example (Section 7.3).
func TriangleInstance() *Instance {
	g := Algorithm()
	a := TriangleArch()
	return &Instance{Graph: g, Arch: a, Spec: newSpec(g, a), K: 1}
}

// mustOK panics on construction errors: the tables above are compile-time
// constants of this package, so an error is a programming bug.
func mustOK(err error) {
	if err != nil {
		panic(fmt.Sprintf("paperex: %v", err))
	}
}

// PaperMakespans records the figures' reported makespans, used by the
// experiment harness to print paper-vs-measured tables.
var PaperMakespans = struct {
	FT1Bus      float64 // Fig. 17
	BasicBus    float64 // Fig. 19
	FT2Triangle float64 // Fig. 22
	BasicP2P    float64 // Fig. 24
}{
	FT1Bus:      9.4,
	BasicBus:    8.6,
	FT2Triangle: 8.9,
	BasicP2P:    8.0,
}
