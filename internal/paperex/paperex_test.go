package paperex

import (
	"math"
	"testing"

	"ftsched/internal/graph"
)

func TestInstancesAreValid(t *testing.T) {
	for name, in := range map[string]*Instance{"bus": BusInstance(), "triangle": TriangleInstance()} {
		if err := in.Graph.Validate(); err != nil {
			t.Errorf("%s graph: %v", name, err)
		}
		if err := in.Arch.Validate(); err != nil {
			t.Errorf("%s arch: %v", name, err)
		}
		if err := in.Spec.Validate(in.Graph, in.Arch); err != nil {
			t.Errorf("%s spec: %v", name, err)
		}
		if in.K != 1 {
			t.Errorf("%s K = %d, want 1", name, in.K)
		}
	}
}

func TestGraphShape(t *testing.T) {
	g := Algorithm()
	if g.NumOps() != 7 || g.NumEdges() != 8 {
		t.Fatalf("graph shape: %s", g.Summary())
	}
	if got := g.Inputs(); len(got) != 1 || got[0] != "I" {
		t.Errorf("Inputs = %v", got)
	}
	if got := g.Outputs(); len(got) != 1 || got[0] != "O" {
		t.Errorf("Outputs = %v", got)
	}
}

func TestCostTablesMatchPaper(t *testing.T) {
	in := BusInstance()
	// Spot-check the unambiguous entries of the Section 5.4 tables.
	cases := []struct {
		op, proc string
		want     float64
	}{
		{"I", "P1", 1}, {"I", "P3", inf},
		{"A", "P2", 2},
		{"B", "P1", 3}, {"B", "P2", 1.5},
		{"C", "P3", 1},
		{"E", "P2", 1},
		{"O", "P1", 1.5}, {"O", "P3", inf},
	}
	for _, c := range cases {
		got := in.Spec.Exec(c.op, c.proc)
		if math.IsInf(c.want, 1) != math.IsInf(got, 1) || (!math.IsInf(c.want, 1) && got != c.want) {
			t.Errorf("exec(%s,%s) = %v, want %v", c.op, c.proc, got, c.want)
		}
	}
	d, err := in.Spec.Comm(graph.EdgeKey{Src: "I", Dst: "A"}, "bus")
	if err != nil || d != 1.25 {
		t.Errorf("comm(I->A, bus) = %v, %v", d, err)
	}
	tri := TriangleInstance()
	for _, l := range []string{"L12", "L23", "L13"} {
		d, err := tri.Spec.Comm(graph.EdgeKey{Src: "D", Dst: "E"}, l)
		if err != nil || d != 1 {
			t.Errorf("comm(D->E, %s) = %v, %v", l, d, err)
		}
	}
}

func TestArchShapes(t *testing.T) {
	bus := BusArch()
	if !bus.IsBusOnly() || bus.NumProcessors() != 3 {
		t.Error("bus arch shape")
	}
	tri := TriangleArch()
	if !tri.IsPointToPointOnly() || tri.NumLinks() != 3 {
		t.Error("triangle arch shape")
	}
	d, err := tri.Diameter()
	if err != nil || d != 1 {
		t.Errorf("triangle diameter = %v, %v", d, err)
	}
}

func TestPaperMakespanConstants(t *testing.T) {
	p := PaperMakespans
	if p.FT1Bus != 9.4 || p.BasicBus != 8.6 || p.FT2Triangle != 8.9 || p.BasicP2P != 8.0 {
		t.Errorf("paper constants changed: %+v", p)
	}
}
