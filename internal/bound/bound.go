// Package bound computes simple lower bounds on the makespan of any
// schedule of a problem, used to report the optimality gap of the greedy
// heuristics (scheduling is NP-complete — Section 4.4 — so heuristics are
// evaluated against bounds, not optima).
package bound

import (
	"fmt"
	"math"

	"ftsched/internal/arch"
	"ftsched/internal/graph"
	"ftsched/internal/spec"
)

// Bounds holds makespan lower bounds for one problem.
type Bounds struct {
	// CriticalPath is the best-case execution of the heaviest dependency
	// chain: every operation on its fastest processor, no communication
	// (colocated consumers).
	CriticalPath float64
	// Work is the total best-case computation divided by the number of
	// processors (perfect load balance, no communication).
	Work float64
}

// Best returns the tighter (larger) of the bounds.
func (b Bounds) Best() float64 { return math.Max(b.CriticalPath, b.Work) }

// Compute derives the lower bounds for scheduling g on a under sp. The
// bounds apply to every valid schedule, including the fault-tolerant ones
// (replication only adds work).
func Compute(g *graph.Graph, a *arch.Architecture, sp *spec.Spec) (Bounds, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return Bounds{}, fmt.Errorf("bound: %w", err)
	}
	minExec := func(op string) (float64, error) {
		best := math.Inf(1)
		for _, p := range a.ProcessorNames() {
			if d := sp.Exec(op, p); d < best {
				best = d
			}
		}
		if math.IsInf(best, 1) {
			return 0, fmt.Errorf("bound: operation %q has no allowed processor", op)
		}
		return best, nil
	}

	var b Bounds
	longest := make(map[string]float64, len(order))
	totalWork := 0.0
	for _, op := range order {
		d, err := minExec(op)
		if err != nil {
			return Bounds{}, err
		}
		totalWork += d
		head := 0.0
		for _, pred := range g.StrictPreds(op) {
			if longest[pred] > head {
				head = longest[pred]
			}
		}
		longest[op] = head + d
		if longest[op] > b.CriticalPath {
			b.CriticalPath = longest[op]
		}
	}
	if n := a.NumProcessors(); n > 0 {
		b.Work = totalWork / float64(n)
	}
	return b, nil
}
