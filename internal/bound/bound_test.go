package bound

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ftsched/internal/core"
	"ftsched/internal/paperex"
	"ftsched/internal/spec"
	"ftsched/internal/workload"
)

func TestComputePaperInstance(t *testing.T) {
	in := paperex.BusInstance()
	b, err := Compute(in.Graph, in.Arch, in.Spec)
	if err != nil {
		t.Fatal(err)
	}
	// Critical path with fastest processors and zero comms:
	// I(1) + A(2) + min(B,C,D on the chain through E)... the heaviest chain
	// is I+A+B_min+E+O = 1+2+1.5+1+1.5 = 7.
	if b.CriticalPath != 7 {
		t.Errorf("critical path bound = %v, want 7", b.CriticalPath)
	}
	// Total min work: 1+2+1.5+1+1+1+1.5 = 9 over 3 procs = 3.
	if b.Work != 3 {
		t.Errorf("work bound = %v, want 3", b.Work)
	}
	if b.Best() != 7 {
		t.Errorf("best = %v", b.Best())
	}
}

func TestBoundsHoldForAllHeuristics(t *testing.T) {
	for _, in := range []*paperex.Instance{paperex.BusInstance(), paperex.TriangleInstance()} {
		b, err := Compute(in.Graph, in.Arch, in.Spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range []core.Heuristic{core.Basic, core.FT1, core.FT2} {
			r, err := core.Schedule(h, in.Graph, in.Arch, in.Spec, 1, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if r.Schedule.Makespan() < b.Best()-1e-9 {
				t.Errorf("%v makespan %v below lower bound %v",
					h, r.Schedule.Makespan(), b.Best())
			}
		}
	}
}

func TestComputeErrors(t *testing.T) {
	in := paperex.BusInstance()
	// Cyclic graph.
	gBad := in.Graph.Clone()
	_ = gBad.Connect("O", "I")
	if _, err := Compute(gBad, in.Arch, in.Spec); err == nil {
		t.Error("cyclic graph must error")
	}
	// Operation with no processor.
	sp := in.Spec.Clone()
	for _, p := range in.Arch.ProcessorNames() {
		_ = sp.SetExec("A", p, spec.Inf)
	}
	if _, err := Compute(in.Graph, in.Arch, sp); err == nil {
		t.Error("unplaceable operation must error")
	}
}

func TestQuickBoundsHoldOnRandomInstances(t *testing.T) {
	f := func(seed int64, szOps uint8, bus bool) bool {
		r := rand.New(rand.NewSource(seed))
		in, err := workload.RandomInstance(r, int(szOps%12)+2, 3, bus, 0.8)
		if err != nil {
			return false
		}
		b, err := Compute(in.Graph, in.Arch, in.Spec)
		if err != nil {
			return false
		}
		for _, h := range []core.Heuristic{core.Basic, core.FT1, core.FT2} {
			res, err := core.Schedule(h, in.Graph, in.Arch, in.Spec, 1, core.Options{})
			if err != nil {
				return false
			}
			if res.Schedule.Makespan() < b.Best()-1e-9 {
				t.Logf("seed=%d h=%v: makespan %v < bound %v",
					seed, h, res.Schedule.Makespan(), b.Best())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
