package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 9.4)
	out := tb.String()
	for _, frag := range []string{"demo", "name", "value", "alpha  1.5", "b      9.4", "----"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q in:\n%s", frag, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Error("NumRows")
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "x")
	tb.AddRow(1)
	if strings.HasPrefix(tb.String(), "\n") {
		t.Error("empty title should not emit a blank line")
	}
}

func TestCell(t *testing.T) {
	cases := []struct {
		in   any
		want string
	}{
		{1.5, "1.5"},
		{9.0, "9"},
		{math.Inf(1), "inf"},
		{math.NaN(), "nan"},
		{42, "42"},
		{"s", "s"},
		{0.0, "0"},
	}
	for _, c := range cases {
		if got := Cell(c.in); got != c.want {
			t.Errorf("Cell(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("x,y", `q"z`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,y"`) || !strings.Contains(csv, `"q""z"`) {
		t.Errorf("CSV quoting broken:\n%s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("CSV header:\n%s", csv)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("stats = %+v", s)
	}
	if math.Abs(s.StdDev-1.2909944487) > 1e-6 {
		t.Errorf("stddev = %v", s.StdDev)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("empty = %+v", z)
	}
	one := Summarize([]float64{5})
	if one.Mean != 5 || one.StdDev != 0 || one.Min != 5 || one.Max != 5 {
		t.Errorf("single = %+v", one)
	}
}
