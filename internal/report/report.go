// Package report renders experiment results as aligned text tables and CSV,
// the output format of the experiment harness and benchmarks.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; values are formatted with Cell.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = Cell(c)
	}
	t.rows = append(t.rows, row)
}

// Cell formats one value: floats get trailing zeros trimmed, +Inf prints as
// "inf", everything else uses fmt defaults.
func Cell(v any) string {
	switch x := v.(type) {
	case float64:
		if math.IsInf(x, 1) {
			return "inf"
		}
		if math.IsNaN(x) {
			return "nan"
		}
		s := strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", x), "0"), ".")
		if s == "" || s == "-" {
			return "0"
		}
		return s
	default:
		return fmt.Sprint(v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quotes cells containing
// commas or quotes).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Stats summarizes a sample.
type Stats struct {
	N              int
	Mean, Min, Max float64
	StdDev         float64
}

// Summarize computes sample statistics; an empty sample returns zeros.
func Summarize(xs []float64) Stats {
	s := Stats{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		v := 0.0
		for _, x := range xs {
			v += (x - s.Mean) * (x - s.Mean)
		}
		s.StdDev = math.Sqrt(v / float64(len(xs)-1))
	}
	return s
}
