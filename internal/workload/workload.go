// Package workload generates synthetic scheduling problems: task graphs in
// the shapes the embedded-systems literature uses (layered random DAGs,
// fork-join controllers, pipelines, diamonds, FFT butterflies, Gaussian
// elimination), architectures (buses, fully connected meshes, rings, and a
// CyCAB-like vehicle network), and cost tables with a controllable
// communication-to-computation ratio (CCR).
//
// All generators are deterministic for a fixed seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"ftsched/internal/arch"
	"ftsched/internal/graph"
	"ftsched/internal/spec"
)

// GraphParams tunes the random layered DAG generator.
type GraphParams struct {
	// Ops is the number of computation operations (>= 1).
	Ops int
	// Width is the maximum number of operations per layer (>= 1).
	Width int
	// EdgeProb is the probability of a dependency between operations in
	// adjacent layers (each op keeps at least one predecessor so the graph
	// stays connected).
	EdgeProb float64
	// WithIO adds one input extio feeding the first layer and one output
	// extio fed by the last layer.
	WithIO bool
}

// LayeredDAG generates a random layered task graph: ops are dealt into
// layers of random width <= Width; each op depends on a random non-empty
// subset of the previous layer.
func LayeredDAG(r *rand.Rand, p GraphParams) (*graph.Graph, error) {
	if p.Ops < 1 || p.Width < 1 {
		return nil, fmt.Errorf("workload: LayeredDAG needs Ops >= 1 and Width >= 1, got %+v", p)
	}
	g := graph.New(fmt.Sprintf("layered_%d", p.Ops))
	var layers [][]string
	made := 0
	for made < p.Ops {
		w := 1 + r.Intn(p.Width)
		if made+w > p.Ops {
			w = p.Ops - made
		}
		var layer []string
		for i := 0; i < w; i++ {
			name := fmt.Sprintf("op%d", made)
			if err := g.AddComp(name); err != nil {
				return nil, err
			}
			layer = append(layer, name)
			made++
		}
		layers = append(layers, layer)
	}
	for li := 1; li < len(layers); li++ {
		for _, dst := range layers[li] {
			connected := false
			for _, src := range layers[li-1] {
				if r.Float64() < p.EdgeProb {
					if err := g.Connect(src, dst); err != nil {
						return nil, err
					}
					connected = true
				}
			}
			if !connected {
				src := layers[li-1][r.Intn(len(layers[li-1]))]
				if err := g.Connect(src, dst); err != nil {
					return nil, err
				}
			}
		}
	}
	if p.WithIO {
		if err := g.AddExtIO("in"); err != nil {
			return nil, err
		}
		if err := g.AddExtIO("out"); err != nil {
			return nil, err
		}
		for _, dst := range layers[0] {
			if err := g.Connect("in", dst); err != nil {
				return nil, err
			}
		}
		for _, src := range layers[len(layers)-1] {
			if err := g.Connect(src, "out"); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// ForkJoin builds a controller-style graph: an input fans out to width
// parallel branches of the given depth, joined into one output.
func ForkJoin(width, depth int) (*graph.Graph, error) {
	if width < 1 || depth < 1 {
		return nil, fmt.Errorf("workload: ForkJoin needs width >= 1 and depth >= 1")
	}
	g := graph.New(fmt.Sprintf("forkjoin_%dx%d", width, depth))
	if err := g.AddExtIO("in"); err != nil {
		return nil, err
	}
	if err := g.AddComp("fork"); err != nil {
		return nil, err
	}
	if err := g.Connect("in", "fork"); err != nil {
		return nil, err
	}
	if err := g.AddComp("join"); err != nil {
		return nil, err
	}
	for b := 0; b < width; b++ {
		prev := "fork"
		for d := 0; d < depth; d++ {
			name := fmt.Sprintf("b%d_%d", b, d)
			if err := g.AddComp(name); err != nil {
				return nil, err
			}
			if err := g.Connect(prev, name); err != nil {
				return nil, err
			}
			prev = name
		}
		if err := g.Connect(prev, "join"); err != nil {
			return nil, err
		}
	}
	if err := g.AddExtIO("out"); err != nil {
		return nil, err
	}
	if err := g.Connect("join", "out"); err != nil {
		return nil, err
	}
	return g, nil
}

// Pipeline builds a linear chain of stages between an input and an output,
// the shape of signal-processing front-ends.
func Pipeline(stages int) (*graph.Graph, error) {
	if stages < 1 {
		return nil, fmt.Errorf("workload: Pipeline needs stages >= 1")
	}
	g := graph.New(fmt.Sprintf("pipeline_%d", stages))
	if err := g.AddExtIO("in"); err != nil {
		return nil, err
	}
	prev := "in"
	for i := 0; i < stages; i++ {
		name := fmt.Sprintf("s%d", i)
		if err := g.AddComp(name); err != nil {
			return nil, err
		}
		if err := g.Connect(prev, name); err != nil {
			return nil, err
		}
		prev = name
	}
	if err := g.AddExtIO("out"); err != nil {
		return nil, err
	}
	return g, g.Connect(prev, "out")
}

// FFT builds the task graph of an n-point fast Fourier transform butterfly
// (n must be a power of two): log2(n) ranks of n operations with the classic
// butterfly dependencies.
func FFT(n int) (*graph.Graph, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("workload: FFT size must be a power of two >= 2, got %d", n)
	}
	g := graph.New(fmt.Sprintf("fft_%d", n))
	ranks := 0
	for v := n; v > 1; v >>= 1 {
		ranks++
	}
	name := func(rank, i int) string { return fmt.Sprintf("f%d_%d", rank, i) }
	for i := 0; i < n; i++ {
		if err := g.AddComp(name(0, i)); err != nil {
			return nil, err
		}
	}
	for rk := 1; rk <= ranks; rk++ {
		span := n >> rk
		for i := 0; i < n; i++ {
			if err := g.AddComp(name(rk, i)); err != nil {
				return nil, err
			}
			if err := g.Connect(name(rk-1, i), name(rk, i)); err != nil {
				return nil, err
			}
			partner := i ^ span
			if err := g.Connect(name(rk-1, partner), name(rk, i)); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// GaussianElimination builds the task graph of the elimination phase on an
// n x n system: pivot tasks chained on the diagonal, each fanning out to the
// row-update tasks of its trailing submatrix.
func GaussianElimination(n int) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("workload: GaussianElimination needs n >= 2")
	}
	g := graph.New(fmt.Sprintf("gauss_%d", n))
	for k := 0; k < n-1; k++ {
		piv := fmt.Sprintf("piv%d", k)
		if err := g.AddComp(piv); err != nil {
			return nil, err
		}
		if k > 0 {
			// The pivot depends on the previous step's update of its row.
			if err := g.Connect(fmt.Sprintf("upd%d_%d", k-1, k), piv); err != nil {
				return nil, err
			}
		}
		for i := k + 1; i < n; i++ {
			upd := fmt.Sprintf("upd%d_%d", k, i)
			if err := g.AddComp(upd); err != nil {
				return nil, err
			}
			if err := g.Connect(piv, upd); err != nil {
				return nil, err
			}
			if k > 0 {
				if err := g.Connect(fmt.Sprintf("upd%d_%d", k-1, i), upd); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// Diamond builds an n-layer diamond (expansion then contraction): one
// source fans out to 2, 3, ..., n operations and back down to one sink,
// every operation depending on the whole previous layer — the worst case
// for communication-heavy schedules.
func Diamond(n int) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("workload: Diamond needs n >= 2")
	}
	g := graph.New(fmt.Sprintf("diamond_%d", n))
	widths := make([]int, 0, 2*n-1)
	for w := 1; w <= n; w++ {
		widths = append(widths, w)
	}
	for w := n - 1; w >= 1; w-- {
		widths = append(widths, w)
	}
	var prev []string
	for li, w := range widths {
		var layer []string
		for i := 0; i < w; i++ {
			name := fmt.Sprintf("d%d_%d", li, i)
			if err := g.AddComp(name); err != nil {
				return nil, err
			}
			for _, p := range prev {
				if err := g.Connect(p, name); err != nil {
					return nil, err
				}
			}
			layer = append(layer, name)
		}
		prev = layer
	}
	return g, nil
}

// ControlLoop builds a sampled control law with state: sensors feed a fusion
// stage, a controller reads the fused value and the previous state (a mem),
// updates the state, and drives actuators.
func ControlLoop(sensors, actuators int) (*graph.Graph, error) {
	if sensors < 1 || actuators < 1 {
		return nil, fmt.Errorf("workload: ControlLoop needs sensors >= 1 and actuators >= 1")
	}
	g := graph.New(fmt.Sprintf("control_%ds%da", sensors, actuators))
	if err := g.AddComp("fusion"); err != nil {
		return nil, err
	}
	for i := 0; i < sensors; i++ {
		name := fmt.Sprintf("sensor%d", i)
		if err := g.AddExtIO(name); err != nil {
			return nil, err
		}
		if err := g.Connect(name, "fusion"); err != nil {
			return nil, err
		}
	}
	if err := g.AddMem("state"); err != nil {
		return nil, err
	}
	if err := g.AddComp("control"); err != nil {
		return nil, err
	}
	if err := g.Connect("fusion", "control"); err != nil {
		return nil, err
	}
	if err := g.Connect("state", "control"); err != nil {
		return nil, err
	}
	if err := g.Connect("control", "state"); err != nil {
		return nil, err
	}
	for i := 0; i < actuators; i++ {
		name := fmt.Sprintf("actuator%d", i)
		if err := g.AddExtIO(name); err != nil {
			return nil, err
		}
		if err := g.Connect("control", name); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// BusArch builds n processors on a single multi-point bus.
func BusArch(n int) (*arch.Architecture, error) {
	if n < 2 {
		return nil, fmt.Errorf("workload: BusArch needs n >= 2")
	}
	a := arch.New(fmt.Sprintf("bus_%d", n))
	procs := procNames(n)
	for _, p := range procs {
		if err := a.AddProcessor(p); err != nil {
			return nil, err
		}
	}
	return a, a.AddBus("bus", procs...)
}

// FullMesh builds n processors fully connected by point-to-point links.
func FullMesh(n int) (*arch.Architecture, error) {
	if n < 2 {
		return nil, fmt.Errorf("workload: FullMesh needs n >= 2")
	}
	a := arch.New(fmt.Sprintf("mesh_%d", n))
	procs := procNames(n)
	for _, p := range procs {
		if err := a.AddProcessor(p); err != nil {
			return nil, err
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := a.AddLink(fmt.Sprintf("L%d_%d", i+1, j+1), procs[i], procs[j]); err != nil {
				return nil, err
			}
		}
	}
	return a, nil
}

// Ring builds n processors connected in a cycle of point-to-point links.
func Ring(n int) (*arch.Architecture, error) {
	if n < 3 {
		return nil, fmt.Errorf("workload: Ring needs n >= 3")
	}
	a := arch.New(fmt.Sprintf("ring_%d", n))
	procs := procNames(n)
	for _, p := range procs {
		if err := a.AddProcessor(p); err != nil {
			return nil, err
		}
	}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		if err := a.AddLink(fmt.Sprintf("R%d", i+1), procs[i], procs[j]); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// Star builds a hub-and-spoke architecture: one central processor connected
// to n-1 spokes by point-to-point links. All spoke-to-spoke traffic is
// routed through the hub, exercising multi-hop transfers (and making the
// hub's failure a partition, a documented limit of processor-only fault
// tolerance).
func Star(n int) (*arch.Architecture, error) {
	if n < 3 {
		return nil, fmt.Errorf("workload: Star needs n >= 3")
	}
	a := arch.New(fmt.Sprintf("star_%d", n))
	procs := procNames(n)
	for _, p := range procs {
		if err := a.AddProcessor(p); err != nil {
			return nil, err
		}
	}
	hub := procs[0]
	for i := 1; i < n; i++ {
		if err := a.AddLink(fmt.Sprintf("S%d", i), hub, procs[i]); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// Cycab builds the conclusion's experimental platform: an electric
// autonomous vehicle with a 5-processor distributed architecture and a CAN
// bus (Section 8).
func Cycab() (*arch.Architecture, error) {
	a := arch.New("cycab")
	for _, p := range []string{"front", "rear", "steer", "vision", "super"} {
		if err := a.AddProcessor(p); err != nil {
			return nil, err
		}
	}
	return a, a.AddBus("can", "front", "rear", "steer", "vision", "super")
}

func procNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("P%d", i+1)
	}
	return out
}

// CostParams tunes the random cost-table generator.
type CostParams struct {
	// MeanExec is the mean execution duration (> 0).
	MeanExec float64
	// Spread is the relative heterogeneity: each (op, proc) duration is
	// drawn uniformly from MeanExec * [1-Spread, 1+Spread]. 0 <= Spread < 1.
	Spread float64
	// CCR is the communication-to-computation ratio: mean communication
	// duration = CCR * MeanExec (>= 0).
	CCR float64
}

// Costs builds a random constraints table for g on a: every operation is
// allowed on every processor (restrict extios afterwards with
// RestrictExtIOs if desired), and each dependency gets one duration used
// uniformly on every link.
func Costs(r *rand.Rand, g *graph.Graph, a *arch.Architecture, p CostParams) (*spec.Spec, error) {
	if p.MeanExec <= 0 || p.Spread < 0 || p.Spread >= 1 || p.CCR < 0 {
		return nil, fmt.Errorf("workload: bad cost params %+v", p)
	}
	sp := spec.New()
	draw := func(mean float64) float64 {
		return mean * (1 - p.Spread + 2*p.Spread*r.Float64())
	}
	for _, op := range g.OpNames() {
		for _, proc := range a.ProcessorNames() {
			if err := sp.SetExec(op, proc, draw(p.MeanExec)); err != nil {
				return nil, err
			}
		}
	}
	for _, e := range g.Edges() {
		if err := sp.SetCommUniform(a, e.Key(), draw(p.MeanExec*p.CCR)); err != nil {
			return nil, err
		}
	}
	return sp, nil
}

// ScaleProcessor multiplies every operation's execution duration on proc by
// factor, modeling heterogeneous processor speeds (factor > 1 = slower).
// Forbidden placements stay forbidden.
func ScaleProcessor(sp *spec.Spec, g *graph.Graph, proc string, factor float64) error {
	if factor <= 0 {
		return fmt.Errorf("workload: scale factor must be positive, got %v", factor)
	}
	for _, op := range g.OpNames() {
		d := sp.Exec(op, proc)
		if math.IsInf(d, 1) {
			continue
		}
		if err := sp.SetExec(op, proc, d*factor); err != nil {
			return err
		}
	}
	return nil
}

// RestrictExtIOs forbids every extio of g from all processors except the
// given count, assigned round-robin in declaration order; this models
// sensors and actuators wired to specific processors.
func RestrictExtIOs(sp *spec.Spec, g *graph.Graph, a *arch.Architecture, allowed int) error {
	procs := a.ProcessorNames()
	if allowed < 1 || allowed > len(procs) {
		return fmt.Errorf("workload: allowed must be in [1, %d]", len(procs))
	}
	idx := 0
	for _, op := range g.Ops() {
		if op.Kind() != graph.KindExtIO {
			continue
		}
		keep := map[string]bool{}
		for i := 0; i < allowed; i++ {
			keep[procs[(idx+i)%len(procs)]] = true
		}
		idx++
		for _, p := range procs {
			if !keep[p] {
				if err := sp.SetExec(op.Name(), p, spec.Inf); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Instance bundles a generated problem.
type Instance struct {
	Graph *graph.Graph
	Arch  *arch.Architecture
	Spec  *spec.Spec
}

// RandomInstance draws a complete random problem: a layered DAG of nOps on
// nProcs processors (bus or full mesh) with the given CCR.
func RandomInstance(r *rand.Rand, nOps, nProcs int, bus bool, ccr float64) (*Instance, error) {
	g, err := LayeredDAG(r, GraphParams{Ops: nOps, Width: maxInt(1, nOps/4), EdgeProb: 0.4, WithIO: true})
	if err != nil {
		return nil, err
	}
	var a *arch.Architecture
	if bus {
		a, err = BusArch(nProcs)
	} else {
		a, err = FullMesh(nProcs)
	}
	if err != nil {
		return nil, err
	}
	sp, err := Costs(r, g, a, CostParams{MeanExec: 2, Spread: 0.5, CCR: ccr})
	if err != nil {
		return nil, err
	}
	return &Instance{Graph: g, Arch: a, Spec: sp}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
