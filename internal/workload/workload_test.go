package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ftsched/internal/graph"
)

func TestLayeredDAG(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	g, err := LayeredDAG(r, GraphParams{Ops: 20, Width: 4, EdgeProb: 0.5, WithIO: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("generated graph invalid: %v", err)
	}
	if g.NumOps() != 22 { // 20 comps + in + out
		t.Errorf("ops = %d", g.NumOps())
	}
	if len(g.Inputs()) != 1 || len(g.Outputs()) != 1 {
		t.Error("io shape")
	}
	if _, err := LayeredDAG(r, GraphParams{Ops: 0, Width: 1}); err == nil {
		t.Error("Ops=0 must error")
	}
	if _, err := LayeredDAG(r, GraphParams{Ops: 1, Width: 0}); err == nil {
		t.Error("Width=0 must error")
	}
}

func TestLayeredDAGDeterministic(t *testing.T) {
	g1, _ := LayeredDAG(rand.New(rand.NewSource(7)), GraphParams{Ops: 15, Width: 3, EdgeProb: 0.5})
	g2, _ := LayeredDAG(rand.New(rand.NewSource(7)), GraphParams{Ops: 15, Width: 3, EdgeProb: 0.5})
	if g1.NumEdges() != g2.NumEdges() {
		t.Error("same seed must generate the same graph")
	}
}

func TestForkJoin(t *testing.T) {
	g, err := ForkJoin(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// in, fork, join, out + 3*2 branch ops
	if g.NumOps() != 10 {
		t.Errorf("ops = %d, want 10", g.NumOps())
	}
	if got := len(g.Preds("join")); got != 3 {
		t.Errorf("join preds = %d", got)
	}
	if _, err := ForkJoin(0, 1); err == nil {
		t.Error("width=0 must error")
	}
}

func TestPipeline(t *testing.T) {
	g, err := Pipeline(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumOps() != 7 || g.NumEdges() != 6 {
		t.Errorf("shape: %s", g.Summary())
	}
	if _, err := Pipeline(0); err == nil {
		t.Error("stages=0 must error")
	}
}

func TestFFT(t *testing.T) {
	g, err := FFT(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// 4 ranks (0..3) of 8 ops.
	if g.NumOps() != 32 {
		t.Errorf("ops = %d, want 32", g.NumOps())
	}
	// Each op of ranks 1..3 has exactly 2 predecessors.
	if got := len(g.Preds("f2_0")); got != 2 {
		t.Errorf("preds(f2_0) = %d", got)
	}
	for _, bad := range []int{0, 1, 3, 6} {
		if _, err := FFT(bad); err == nil {
			t.Errorf("FFT(%d) must error", bad)
		}
	}
}

func TestGaussianElimination(t *testing.T) {
	g, err := GaussianElimination(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Pivots: 3; updates: 3+2+1 = 6.
	if g.NumOps() != 9 {
		t.Errorf("ops = %d, want 9", g.NumOps())
	}
	if _, err := GaussianElimination(1); err == nil {
		t.Error("n=1 must error")
	}
}

func TestDiamond(t *testing.T) {
	g, err := Diamond(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Layers 1,2,3,2,1 = 9 ops.
	if g.NumOps() != 9 {
		t.Errorf("ops = %d, want 9", g.NumOps())
	}
	if got := len(g.Sources()); got != 1 {
		t.Errorf("sources = %d", got)
	}
	if got := len(g.Sinks()); got != 1 {
		t.Errorf("sinks = %d", got)
	}
	// Middle layer ops each depend on the whole previous layer (width 2).
	if got := len(g.Preds("d2_0")); got != 2 {
		t.Errorf("preds(d2_0) = %d", got)
	}
	if _, err := Diamond(1); err == nil {
		t.Error("n=1 must error")
	}
}

func TestControlLoop(t *testing.T) {
	g, err := ControlLoop(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Inputs()) != 3 || len(g.Outputs()) != 2 {
		t.Error("io counts")
	}
	if g.Op("state").Kind() != graph.KindMem {
		t.Error("state must be a mem")
	}
	if !g.Edge(graph.EdgeKey{Src: "control", Dst: "state"}).Delayed() {
		t.Error("state update must be delayed")
	}
	if _, err := ControlLoop(0, 1); err == nil {
		t.Error("sensors=0 must error")
	}
}

func TestArchitectures(t *testing.T) {
	bus, err := BusArch(4)
	if err != nil || bus.Validate() != nil || !bus.IsBusOnly() {
		t.Error("BusArch")
	}
	mesh, err := FullMesh(4)
	if err != nil || mesh.Validate() != nil || !mesh.IsPointToPointOnly() {
		t.Error("FullMesh")
	}
	if mesh.NumLinks() != 6 {
		t.Errorf("mesh links = %d", mesh.NumLinks())
	}
	ring, err := Ring(5)
	if err != nil || ring.Validate() != nil {
		t.Error("Ring")
	}
	if ring.NumLinks() != 5 {
		t.Errorf("ring links = %d", ring.NumLinks())
	}
	d, _ := ring.Diameter()
	if d != 2 {
		t.Errorf("ring-5 diameter = %d, want 2", d)
	}
	star, err := Star(5)
	if err != nil || star.Validate() != nil {
		t.Error("Star")
	}
	if star.NumLinks() != 4 {
		t.Errorf("star links = %d", star.NumLinks())
	}
	if d, _ := star.Diameter(); d != 2 {
		t.Errorf("star diameter = %d, want 2", d)
	}
	if _, err := Star(2); err == nil {
		t.Error("Star(2) must error")
	}
	cy, err := Cycab()
	if err != nil || cy.Validate() != nil {
		t.Error("Cycab")
	}
	if cy.NumProcessors() != 5 || !cy.IsBusOnly() {
		t.Error("Cycab shape")
	}
	if _, err := BusArch(1); err == nil {
		t.Error("BusArch(1) must error")
	}
	if _, err := FullMesh(1); err == nil {
		t.Error("FullMesh(1) must error")
	}
	if _, err := Ring(2); err == nil {
		t.Error("Ring(2) must error")
	}
}

func TestCosts(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g, _ := Pipeline(4)
	a, _ := BusArch(3)
	sp, err := Costs(r, g, a, CostParams{MeanExec: 2, Spread: 0.5, CCR: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(g, a); err != nil {
		t.Fatalf("generated spec invalid: %v", err)
	}
	for _, op := range g.OpNames() {
		for _, p := range a.ProcessorNames() {
			d := sp.Exec(op, p)
			if d < 1 || d > 3 {
				t.Errorf("exec(%s,%s) = %v outside [1,3]", op, p, d)
			}
		}
	}
	for _, bad := range []CostParams{
		{MeanExec: 0, Spread: 0, CCR: 1},
		{MeanExec: 1, Spread: -0.1, CCR: 1},
		{MeanExec: 1, Spread: 1, CCR: 1},
		{MeanExec: 1, Spread: 0, CCR: -1},
	} {
		if _, err := Costs(r, g, a, bad); err == nil {
			t.Errorf("params %+v must error", bad)
		}
	}
}

func TestRestrictExtIOs(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g, _ := ControlLoop(2, 1)
	a, _ := BusArch(4)
	sp, _ := Costs(r, g, a, CostParams{MeanExec: 1, Spread: 0, CCR: 0.5})
	if err := RestrictExtIOs(sp, g, a, 2); err != nil {
		t.Fatal(err)
	}
	for _, op := range g.Ops() {
		allowed := len(sp.AllowedProcs(op.Name()))
		if op.Kind() == graph.KindExtIO && allowed != 2 {
			t.Errorf("extio %s allowed on %d procs, want 2", op.Name(), allowed)
		}
		if op.Kind() != graph.KindExtIO && allowed != 4 {
			t.Errorf("op %s allowed on %d procs, want 4", op.Name(), allowed)
		}
	}
	if err := RestrictExtIOs(sp, g, a, 0); err == nil {
		t.Error("allowed=0 must error")
	}
	if err := RestrictExtIOs(sp, g, a, 9); err == nil {
		t.Error("allowed>procs must error")
	}
}

func TestScaleProcessor(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	g, _ := Pipeline(3)
	a, _ := BusArch(3)
	sp, _ := Costs(r, g, a, CostParams{MeanExec: 2, Spread: 0, CCR: 0.5})
	if err := RestrictExtIOs(sp, g, a, 2); err != nil {
		t.Fatal(err)
	}
	before := sp.Exec("s0", "P2")
	if err := ScaleProcessor(sp, g, "P2", 2.5); err != nil {
		t.Fatal(err)
	}
	if got := sp.Exec("s0", "P2"); got != before*2.5 {
		t.Errorf("exec after scale = %v, want %v", got, before*2.5)
	}
	// Other processors untouched, forbidden placements stay forbidden.
	if sp.Exec("s0", "P1") != 2 {
		t.Error("other processor changed")
	}
	for _, op := range g.OpNames() {
		if len(sp.AllowedProcs(op)) == 0 {
			t.Errorf("op %s lost all processors", op)
		}
	}
	if err := ScaleProcessor(sp, g, "P2", 0); err == nil {
		t.Error("zero factor must error")
	}
	if err := ScaleProcessor(sp, g, "P2", -1); err == nil {
		t.Error("negative factor must error")
	}
}

func TestRandomInstance(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, bus := range []bool{true, false} {
		in, err := RandomInstance(r, 12, 3, bus, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if err := in.Graph.Validate(); err != nil {
			t.Fatal(err)
		}
		if err := in.Arch.Validate(); err != nil {
			t.Fatal(err)
		}
		if err := in.Spec.Validate(in.Graph, in.Arch); err != nil {
			t.Fatal(err)
		}
	}
}

func TestQuickGeneratedInstancesAreValid(t *testing.T) {
	f := func(seed int64, szOps, szProcs uint8, bus bool) bool {
		r := rand.New(rand.NewSource(seed))
		nOps := int(szOps%20) + 1
		nProcs := int(szProcs%4) + 2
		in, err := RandomInstance(r, nOps, nProcs, bus, 0.8)
		if err != nil {
			return false
		}
		return in.Graph.Validate() == nil &&
			in.Arch.Validate() == nil &&
			in.Spec.Validate(in.Graph, in.Arch) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
