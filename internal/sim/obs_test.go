package sim

import (
	"reflect"
	"testing"

	"ftsched/internal/core"
	"ftsched/internal/obs"
	"ftsched/internal/paperex"
)

// TestSimObsCounters simulates an FT1 failover under instrumentation and
// cross-checks the sink against the per-iteration results: fault
// activations, timeout firings, failovers, and executed operations must all
// surface, and the simulation outcome must be identical with and without
// the sink.
func TestSimObsCounters(t *testing.T) {
	in := paperex.BusInstance()
	s := schedule(t, in, core.FT1, 1)
	sc := Single("P1", 0, 0.5)

	plain, err := Simulate(s, in.Graph, in.Arch, in.Spec, sc, Config{Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewSink()
	res, err := Simulate(s, in.Graph, in.Arch, in.Spec, sc, Config{Iterations: 3, Obs: sink})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, plain) {
		t.Errorf("instrumented simulation differs:\n%+v\nvs\n%+v", res, plain)
	}

	snap := sink.Snapshot()
	if snap["sim.faults.activated"] != 1 {
		t.Errorf("sim.faults.activated = %d, want 1", snap["sim.faults.activated"])
	}
	var timeouts, execs int64
	for _, ir := range res.Iterations {
		timeouts += int64(ir.TimeoutsFired)
		execs += int64(len(ir.Outputs))
	}
	if snap["sim.timeouts.fired"] != timeouts {
		t.Errorf("sim.timeouts.fired = %d, iterations report %d", snap["sim.timeouts.fired"], timeouts)
	}
	if timeouts == 0 {
		t.Error("scenario should fire FT1 timeouts")
	}
	if snap["sim.failovers"] == 0 {
		t.Error("scenario should record failovers")
	}
	if snap["sim.ops.executed"] == 0 || snap["sim.ops.cancelled"] == 0 {
		t.Errorf("operation counters missing: %v", snap)
	}
	if snap["sim.messages.delivered"] == 0 {
		t.Errorf("no delivered messages counted: %v", snap)
	}
	if tm := sink.Timers()["iteration"]; tm.Count != 3 {
		t.Errorf("iteration spans = %d, want 3", tm.Count)
	}
}

// TestSimObsFailureFree pins the quiet path: no faults, no timeouts, no
// losses — only executions and deliveries.
func TestSimObsFailureFree(t *testing.T) {
	in := paperex.BusInstance()
	s := schedule(t, in, core.FT1, 1)
	sink := obs.NewSink()
	if _, err := Simulate(s, in.Graph, in.Arch, in.Spec, Scenario{}, Config{Iterations: 2, Obs: sink}); err != nil {
		t.Fatal(err)
	}
	snap := sink.Snapshot()
	for _, name := range []string{
		"sim.faults.activated", "sim.timeouts.fired", "sim.failovers",
		"sim.messages.lost", "sim.receptions.missed", "sim.ops.cancelled",
		"sim.detections.false",
	} {
		if snap[name] != 0 {
			t.Errorf("failure-free run: %s = %d, want 0", name, snap[name])
		}
	}
	if snap["sim.ops.executed"] == 0 || snap["sim.messages.delivered"] == 0 {
		t.Errorf("failure-free run recorded no work: %v", snap)
	}
}
