package sim

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"ftsched/internal/core"
	"ftsched/internal/paperex"
)

// A pre-raised cancel flag aborts before the first iteration runs; an
// attached-but-never-raised flag leaves the result untouched.
func TestCancelFlag(t *testing.T) {
	in := paperex.BusInstance()
	res, err := core.ScheduleFT1(in.Graph, in.Arch, in.Spec, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var raised atomic.Bool
	raised.Store(true)
	_, err = Simulate(res.Schedule, in.Graph, in.Arch, in.Spec, Scenario{},
		Config{Iterations: 3, Cancel: &raised})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-raised cancel: got err %v, want ErrCanceled", err)
	}

	plain, err := Simulate(res.Schedule, in.Graph, in.Arch, in.Spec, Scenario{}, Config{Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	var unraised atomic.Bool
	flagged, err := Simulate(res.Schedule, in.Graph, in.Arch, in.Spec, Scenario{},
		Config{Iterations: 3, Cancel: &unraised})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, flagged) {
		t.Fatalf("result changed when a cancel flag was attached")
	}
}
