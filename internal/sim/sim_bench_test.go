package sim

import (
	"math/rand"
	"testing"

	"ftsched/internal/core"
	"ftsched/internal/paperex"
	"ftsched/internal/workload"
)

func BenchmarkSimulateFailureFreePaper(b *testing.B) {
	in := paperex.BusInstance()
	r, err := core.ScheduleFT1(in.Graph, in.Arch, in.Spec, 1, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(r.Schedule, in.Graph, in.Arch, in.Spec, Scenario{}, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateTransientPaper(b *testing.B) {
	in := paperex.BusInstance()
	r, err := core.ScheduleFT1(in.Graph, in.Arch, in.Spec, 1, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	sc := Single("P2", 0, 3.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(r.Schedule, in.Graph, in.Arch, in.Spec, sc, Config{Iterations: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateLargeFT2(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	in, err := workload.RandomInstance(rng, 60, 4, false, 0.8)
	if err != nil {
		b.Fatal(err)
	}
	r, err := core.ScheduleFT2(in.Graph, in.Arch, in.Spec, 1, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	sc := Single("P2", 0, r.Schedule.Makespan()/3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Simulate(r.Schedule, in.Graph, in.Arch, in.Spec, sc, Config{Iterations: 2})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Iterations[0].Completed {
			b.Fatal("lost outputs")
		}
	}
}
