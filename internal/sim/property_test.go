package sim_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"ftsched/internal/arch"
	"ftsched/internal/core"
	"ftsched/internal/faults"
	"ftsched/internal/graph"
	"ftsched/internal/paperex"
	"ftsched/internal/sim"
	"ftsched/internal/spec"
)

// randomProblem generates a random layered DAG on a random architecture with
// every op allowed everywhere (so any K < nProcs is feasible).
func randomProblem(r *rand.Rand, nOps, nProcs int, bus bool) (*graph.Graph, *arch.Architecture, *spec.Spec) {
	g := graph.New("rand")
	for i := 0; i < nOps; i++ {
		_ = g.AddComp(fmt.Sprintf("op%d", i))
	}
	for i := 0; i < nOps; i++ {
		for j := i + 1; j < nOps; j++ {
			if r.Intn(3) == 0 {
				_ = g.Connect(fmt.Sprintf("op%d", i), fmt.Sprintf("op%d", j))
			}
		}
	}
	a := arch.New("rand")
	procs := make([]string, nProcs)
	for i := range procs {
		procs[i] = fmt.Sprintf("P%d", i)
		_ = a.AddProcessor(procs[i])
	}
	if bus {
		_ = a.AddBus("bus", procs...)
	} else {
		for i := 0; i < nProcs; i++ {
			for j := i + 1; j < nProcs; j++ {
				_ = a.AddLink(fmt.Sprintf("L%d_%d", i, j), procs[i], procs[j])
			}
		}
	}
	sp := spec.New()
	for _, op := range g.OpNames() {
		for _, p := range procs {
			_ = sp.SetExec(op, p, 0.5+r.Float64()*2)
		}
	}
	for _, e := range g.Edges() {
		_ = sp.SetCommUniform(a, e.Key(), 0.1+r.Float64())
	}
	return g, a, sp
}

// TestQuickFailureFreeSimulationMatchesStatic checks the executive
// invariant: with no failures, the simulated execution reproduces the static
// schedule's makespan for every heuristic.
func TestQuickFailureFreeSimulationMatchesStatic(t *testing.T) {
	f := func(seed int64, szOps, szProcs uint8, bus bool) bool {
		r := rand.New(rand.NewSource(seed))
		nOps := int(szOps%8) + 2
		nProcs := int(szProcs%3) + 2
		g, a, sp := randomProblem(r, nOps, nProcs, bus)
		for _, h := range []core.Heuristic{core.Basic, core.FT1, core.FT2} {
			res, err := core.Schedule(h, g, a, sp, 1, core.Options{})
			if err != nil {
				return false
			}
			sr, err := sim.Simulate(res.Schedule, g, a, sp, sim.Scenario{}, sim.Config{})
			if err != nil {
				return false
			}
			ir := sr.Iterations[0]
			if !ir.Completed {
				t.Logf("seed=%d h=%v: failure-free run incomplete", seed, h)
				return false
			}
			if diff := ir.End - res.Schedule.Makespan(); diff > 1e-6 || diff < -1e-6 {
				t.Logf("seed=%d h=%v: simulated end %v != static %v",
					seed, h, ir.End, res.Schedule.Makespan())
				return false
			}
			if ir.TimeoutsFired != 0 || ir.FalseDetections != 0 {
				t.Logf("seed=%d h=%v: spurious timeouts", seed, h)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 80}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFT1ToleratesAnySingleFailure is the paper's central claim for the
// first solution: a K=1 FT1 schedule on a bus delivers every output under
// any single fail-stop failure at any time, in the transient iteration and
// in all subsequent ones.
func TestQuickFT1ToleratesAnySingleFailure(t *testing.T) {
	f := func(seed int64, szOps uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g, a, sp := randomProblem(r, int(szOps%8)+2, 3, true)
		res, err := core.ScheduleFT1(g, a, sp, 1, core.Options{})
		if err != nil {
			return false
		}
		horizon := res.Schedule.Makespan()
		for _, sc := range faults.SingleSweep(a, 0, faults.CrashDates(horizon, 6)) {
			sr, err := sim.Simulate(res.Schedule, g, a, sp, sc, sim.Config{Iterations: 2})
			if err != nil {
				return false
			}
			for _, ir := range sr.Iterations {
				if !ir.Completed {
					t.Logf("seed=%d: failure %+v: iteration %d incomplete",
						seed, sc.Failures[0], ir.Index)
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFT2ToleratesAnySingleFailure is the mirror claim for the second
// solution on point-to-point architectures, with the additional invariant
// that no timeouts ever fire.
func TestQuickFT2ToleratesAnySingleFailure(t *testing.T) {
	f := func(seed int64, szOps uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g, a, sp := randomProblem(r, int(szOps%8)+2, 3, false)
		res, err := core.ScheduleFT2(g, a, sp, 1, core.Options{})
		if err != nil {
			return false
		}
		horizon := res.Schedule.Makespan()
		for _, sc := range faults.SingleSweep(a, 0, faults.CrashDates(horizon, 6)) {
			sr, err := sim.Simulate(res.Schedule, g, a, sp, sc, sim.Config{Iterations: 2})
			if err != nil {
				return false
			}
			for _, ir := range sr.Iterations {
				if !ir.Completed || ir.TimeoutsFired != 0 {
					t.Logf("seed=%d: failure %+v: iteration %d incomplete or timed out",
						seed, sc.Failures[0], ir.Index)
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFT2ToleratesDoubleFailures exercises K=2 with every pair of
// simultaneous failures on a 4-processor point-to-point architecture.
func TestQuickFT2ToleratesDoubleFailures(t *testing.T) {
	f := func(seed int64, szOps uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g, a, sp := randomProblem(r, int(szOps%6)+2, 4, false)
		res, err := core.ScheduleFT2(g, a, sp, 2, core.Options{})
		if err != nil {
			return false
		}
		horizon := res.Schedule.Makespan()
		for _, at := range []float64{0, horizon / 2} {
			for _, sc := range faults.SimultaneousSweep(a, 2, 0, at) {
				sr, err := sim.Simulate(res.Schedule, g, a, sp, sc, sim.Config{Iterations: 2})
				if err != nil {
					return false
				}
				for _, ir := range sr.Iterations {
					if !ir.Completed {
						t.Logf("seed=%d at=%v failures=%v: incomplete", seed, at, sc.Failures)
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFT1ToleratesStaggeredDoubleFailures exercises FT1 with K=2 under
// one failure per iteration (the regime the paper says FT1 handles well).
func TestQuickFT1ToleratesStaggeredDoubleFailures(t *testing.T) {
	f := func(seed int64, szOps uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g, a, sp := randomProblem(r, int(szOps%6)+2, 4, true)
		res, err := core.ScheduleFT1(g, a, sp, 2, core.Options{})
		if err != nil {
			return false
		}
		for _, sc := range faults.StaggeredSweep(a, 2, 0) {
			sr, err := sim.Simulate(res.Schedule, g, a, sp, sc, sim.Config{Iterations: 3})
			if err != nil {
				return false
			}
			for _, ir := range sr.Iterations {
				if !ir.Completed {
					t.Logf("seed=%d failures=%v: iteration %d incomplete", seed, sc.Failures, ir.Index)
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPaperInstanceExhaustiveSingleFailures runs a dense single-failure
// sweep on both paper instances.
func TestPaperInstanceExhaustiveSingleFailures(t *testing.T) {
	bus := paperex.BusInstance()
	ft1, err := core.ScheduleFT1(bus.Graph, bus.Arch, bus.Spec, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range faults.SingleSweep(bus.Arch, 0, faults.CrashDates(ft1.Schedule.Makespan(), 20)) {
		res, err := sim.Simulate(ft1.Schedule, bus.Graph, bus.Arch, bus.Spec, sc, sim.Config{Iterations: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, ir := range res.Iterations {
			if !ir.Completed {
				t.Errorf("FT1: %+v iteration %d incomplete", sc.Failures[0], ir.Index)
			}
		}
	}
	tri := paperex.TriangleInstance()
	ft2, err := core.ScheduleFT2(tri.Graph, tri.Arch, tri.Spec, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range faults.SingleSweep(tri.Arch, 0, faults.CrashDates(ft2.Schedule.Makespan(), 20)) {
		res, err := sim.Simulate(ft2.Schedule, tri.Graph, tri.Arch, tri.Spec, sc, sim.Config{Iterations: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, ir := range res.Iterations {
			if !ir.Completed {
				t.Errorf("FT2: %+v iteration %d incomplete", sc.Failures[0], ir.Index)
			}
		}
	}
}
