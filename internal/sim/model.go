package sim

import (
	"fmt"
	"math"
	"sort"

	"ftsched/internal/arch"
	"ftsched/internal/graph"
	"ftsched/internal/sched"
	"ftsched/internal/spec"
)

// Model is the dense-compiled form of one (schedule, graph, architecture,
// spec) quadruple: every name is interned to an int32 index and every
// structure the legacy engine re-derived per Simulate call — per-processor
// sequences, delivery groups with their failover chains, route hops, and
// per-link static communication orders — is flattened into immutable
// prefix-indexed arrays. A Model is read-only after Compile and safe to
// share across any number of concurrent Runners; one compiled model plus a
// per-worker Runner is the intended shape for Monte-Carlo fault campaigns
// (internal/campaign).
//
// Interning orders (all deterministic):
//
//   - processors: architecture processor names, sorted;
//   - links: architecture link names, sorted;
//   - operations: graph declaration order (OpNames);
//   - edges: graph edge order (Edges);
//   - instances: schedule processors in sorted-name order, each processor's
//     slots in start order (ProcSlots);
//   - groups/senders/hops: sched.Deliveries order;
//   - queue entries: per link, by (start, transfer ID, hop) — the same
//     static order the legacy engine rebuilds each iteration.
type Model struct {
	s  *sched.Schedule
	g  *graph.Graph
	a  *arch.Architecture
	sp *spec.Spec

	procs   []string
	procIdx map[string]int32
	links   []string
	linkIdx map[string]int32
	ops     []string
	opIdx   map[string]int32
	edges   []graph.EdgeKey
	edgeStr []string

	// schedProcs are the processor IDs carrying op slots, ascending; the
	// engine's processor scans range over exactly this set, mirroring the
	// legacy scan of sched.Procs().
	schedProcs []int32

	// Per-processor operation sequences: instances of processor p are
	// insts[seqStart[p]:seqStart[p+1]], in static start order.
	seqStart []int32
	instOp   []int32
	instExec []float64
	// Strict-predecessor inputs of instance i: predOp/predEdge pairs in
	// preds[predStart[i]:predStart[i+1]] (predOp is the producing op, the
	// local-result lookup; predEdge the dependency, the transfer lookup).
	predStart []int32
	predOp    []int32
	predEdge  []int32
	// instAt[op*numProcs+proc] is the instance index of op on proc, or -1.
	instAt []int32

	// Delivery groups, their senders, and the senders' route hops, all in
	// prefix-array form.
	groups    []mGroup
	senders   []mSender
	hops      []mHop
	receivers []int32

	// Per-link static communication orders: link l executes
	// queueEntries[queueStart[l]:queueStart[l+1]].
	queueStart   []int32
	queueEntries []mQueueEntry

	// Outputs (falling back to graph sinks, like the legacy report).
	outOps   []int32
	outNames []string

	makespan float64
}

// mGroup is one delivery: the senders able to provide one edge's value to
// its receivers.
type mGroup struct {
	edge           int32
	chain          bool // FT1 failover semantics
	sendLo, sendHi int32
	rcvLo, rcvHi   int32
}

// mSender is one replica's transfer within a delivery group.
type mSender struct {
	proc     int32
	srcOp    int32
	srcInst  int32 // instance of srcOp on proc, or -1
	deadline float64
	passive  bool
	hopLo    int32
	hopHi    int32
}

// mHop is one link traversal of a transfer.
type mHop struct {
	link int32
	from int32 // forwarding processor
	dur  float64
}

// mQueueEntry is one active hop in a link's static communication order.
type mQueueEntry struct {
	sender int32
	group  int32
	hop    int32 // hop ordinal within the sender's route
}

// Compile interns and flattens the schedule into an immutable Model. The
// graph, architecture, and constraints must be the ones the schedule was
// produced from; inconsistencies the legacy engine would only hit mid-run
// (unknown names, missing WCETs) are front-loaded into compile errors.
func Compile(s *sched.Schedule, g *graph.Graph, a *arch.Architecture, sp *spec.Spec) (*Model, error) {
	m := &Model{s: s, g: g, a: a, sp: sp}

	m.procs = append([]string(nil), a.ProcessorNames()...)
	sort.Strings(m.procs)
	m.procIdx = make(map[string]int32, len(m.procs))
	for i, p := range m.procs {
		m.procIdx[p] = int32(i)
	}
	m.links = append([]string(nil), a.LinkNames()...)
	sort.Strings(m.links)
	m.linkIdx = make(map[string]int32, len(m.links))
	for i, l := range m.links {
		m.linkIdx[l] = int32(i)
	}
	m.ops = g.OpNames()
	m.opIdx = make(map[string]int32, len(m.ops))
	for i, op := range m.ops {
		m.opIdx[op] = int32(i)
	}
	edgeIdx := make(map[graph.EdgeKey]int32, g.NumEdges())
	for _, e := range g.Edges() {
		edgeIdx[e.Key()] = int32(len(m.edges))
		m.edges = append(m.edges, e.Key())
		m.edgeStr = append(m.edgeStr, e.Key().String())
	}

	nP := int32(len(m.procs))
	m.instAt = make([]int32, len(m.ops)*len(m.procs))
	for i := range m.instAt {
		m.instAt[i] = -1
	}
	m.seqStart = make([]int32, len(m.procs)+1)
	inSched := make([]bool, len(m.procs))
	for _, p := range s.Procs() {
		pid, ok := m.procIdx[p]
		if !ok {
			return nil, fmt.Errorf("sim: schedule uses unknown processor %q", p)
		}
		inSched[pid] = true
	}
	for pid, p := range m.procs {
		m.seqStart[pid] = int32(len(m.instOp))
		if !inSched[pid] {
			continue
		}
		m.schedProcs = append(m.schedProcs, int32(pid))
		for _, sl := range s.ProcSlots(p) {
			oid, ok := m.opIdx[sl.Op]
			if !ok {
				return nil, fmt.Errorf("sim: schedule places unknown operation %q", sl.Op)
			}
			exec := sp.Exec(sl.Op, p)
			if math.IsInf(exec, 1) {
				return nil, fmt.Errorf("sim: operation %q has no WCET on processor %q", sl.Op, p)
			}
			m.instAt[int(oid)*int(nP)+pid] = int32(len(m.instOp))
			m.predStart = append(m.predStart, int32(len(m.predOp)))
			for _, pred := range g.StrictPreds(sl.Op) {
				key := graph.EdgeKey{Src: pred, Dst: sl.Op}
				eid, ok := edgeIdx[key]
				if !ok {
					return nil, fmt.Errorf("sim: dependency %s is not a graph edge", key)
				}
				m.predOp = append(m.predOp, m.opIdx[pred])
				m.predEdge = append(m.predEdge, eid)
			}
			m.instOp = append(m.instOp, oid)
			m.instExec = append(m.instExec, exec)
		}
	}
	m.seqStart[len(m.procs)] = int32(len(m.instOp))
	m.predStart = append(m.predStart, int32(len(m.predOp)))

	// Delivery groups in sched.Deliveries order; the per-link static orders
	// are compiled once here with the exact sort the legacy engine rebuilds
	// per iteration.
	type staticHop struct {
		entry mQueueEntry
		start float64
		id    int
		hop   int
	}
	perLink := make([][]staticHop, len(m.links))
	for _, d := range s.Deliveries() {
		gi := int32(len(m.groups))
		eid, ok := edgeIdx[d.Edge]
		if !ok {
			return nil, fmt.Errorf("sim: delivery of %s is not a graph edge", d.Edge)
		}
		gr := mGroup{edge: eid, chain: d.Chain, sendLo: int32(len(m.senders))}
		for _, dsd := range d.Senders {
			pid, ok := m.procIdx[dsd.Proc]
			if !ok {
				return nil, fmt.Errorf("sim: sender on unknown processor %q", dsd.Proc)
			}
			oid, ok := m.opIdx[d.Edge.Src]
			if !ok {
				return nil, fmt.Errorf("sim: sender of unknown operation %q", d.Edge.Src)
			}
			si := int32(len(m.senders))
			sd := mSender{
				proc:     pid,
				srcOp:    oid,
				srcInst:  m.instAt[int(oid)*int(nP)+int(pid)],
				deadline: dsd.Deadline,
				passive:  dsd.Passive,
				hopLo:    int32(len(m.hops)),
			}
			for i, h := range dsd.Hops {
				lid, ok := m.linkIdx[h.Link]
				if !ok {
					return nil, fmt.Errorf("sim: hop over unknown link %q", h.Link)
				}
				fid, ok := m.procIdx[h.From]
				if !ok {
					return nil, fmt.Errorf("sim: hop from unknown processor %q", h.From)
				}
				m.hops = append(m.hops, mHop{link: lid, from: fid, dur: h.End - h.Start})
				if !h.Passive {
					perLink[lid] = append(perLink[lid], staticHop{
						entry: mQueueEntry{sender: si, group: gi, hop: int32(i)},
						start: h.Start,
						id:    h.TransferID,
						hop:   i,
					})
				}
			}
			sd.hopHi = int32(len(m.hops))
			m.senders = append(m.senders, sd)
		}
		gr.sendHi = int32(len(m.senders))
		gr.rcvLo = int32(len(m.receivers))
		if d.Broadcast {
			for _, p := range a.Link(d.Link).Endpoints() {
				pid, ok := m.procIdx[p]
				if !ok {
					return nil, fmt.Errorf("sim: bus endpoint %q is not a processor", p)
				}
				m.receivers = append(m.receivers, pid)
			}
		} else {
			pid, ok := m.procIdx[d.Dst]
			if !ok {
				return nil, fmt.Errorf("sim: delivery to unknown processor %q", d.Dst)
			}
			m.receivers = append(m.receivers, pid)
		}
		gr.rcvHi = int32(len(m.receivers))
		m.groups = append(m.groups, gr)
	}
	m.queueStart = make([]int32, len(m.links)+1)
	for lid, hops := range perLink {
		m.queueStart[lid] = int32(len(m.queueEntries))
		sort.SliceStable(hops, func(i, j int) bool {
			if math.Abs(hops[i].start-hops[j].start) > eps {
				return hops[i].start < hops[j].start
			}
			if hops[i].id != hops[j].id {
				return hops[i].id < hops[j].id
			}
			return hops[i].hop < hops[j].hop
		})
		for _, h := range hops {
			m.queueEntries = append(m.queueEntries, h.entry)
		}
	}
	m.queueStart[len(m.links)] = int32(len(m.queueEntries))

	outs := g.Outputs()
	if len(outs) == 0 {
		outs = g.Sinks()
	}
	for _, out := range outs {
		oid, ok := m.opIdx[out]
		if !ok {
			return nil, fmt.Errorf("sim: output %q is not a graph operation", out)
		}
		m.outOps = append(m.outOps, oid)
		m.outNames = append(m.outNames, out)
	}

	m.makespan = s.Makespan()
	return m, nil
}

// Makespan returns the schedule's failure-free completion date.
func (m *Model) Makespan() float64 { return m.makespan }

// Procs returns the architecture's processor names, sorted. The slice is
// owned by the model; callers must not mutate it.
func (m *Model) Procs() []string { return m.procs }

// Links returns the architecture's link names, sorted. The slice is owned
// by the model; callers must not mutate it.
func (m *Model) Links() []string { return m.links }

// Validate checks the scenario against the model's architecture without
// running it, with the same errors Simulate would report.
func (m *Model) Validate(sc Scenario) error { return sc.validate(m.a) }

// Simulate runs one scenario on a fresh Runner. Callers running many
// scenarios should hold a Runner per worker and call Run repeatedly.
func (m *Model) Simulate(sc Scenario, cfg Config) (*Result, error) {
	return m.NewRunner().Run(sc, cfg)
}
