package sim

import (
	"testing"

	"ftsched/internal/core"
	"ftsched/internal/paperex"
)

func TestTraceRecordsChronologicalEvents(t *testing.T) {
	in := paperex.BusInstance()
	s := schedule(t, in, core.FT1, 1)
	res, err := Simulate(s, in.Graph, in.Arch, in.Spec, Scenario{}, Config{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Iterations[0].Trace
	if len(tr) == 0 {
		t.Fatal("no trace recorded")
	}
	ops, comms := 0, 0
	for i, ev := range tr {
		if i > 0 && ev.Start < tr[i-1].Start-1e-9 {
			t.Errorf("trace not chronological at %d: %v after %v", i, ev, tr[i-1])
		}
		switch ev.Kind {
		case EventOp:
			ops++
		case EventComm:
			comms++
		case EventFailover:
			t.Error("failure-free run must not record failovers")
		}
	}
	if ops != s.NumOpSlots() {
		t.Errorf("trace has %d op events, schedule has %d slots", ops, s.NumOpSlots())
	}
	if comms != s.NumActiveComms() {
		t.Errorf("trace has %d comm events, schedule has %d active comms", comms, s.NumActiveComms())
	}
}

func TestTraceFailoverEvents(t *testing.T) {
	in := paperex.BusInstance()
	s := schedule(t, in, core.FT1, 1)
	res, err := Simulate(s, in.Graph, in.Arch, in.Spec, Single("P2", 0, 0), Config{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	failovers := 0
	for _, ev := range res.Iterations[0].Trace {
		if ev.Kind == EventFailover {
			failovers++
		}
	}
	if failovers == 0 {
		t.Error("crash of a main-hosting processor must record failover events")
	}
}

func TestTraceOffByDefault(t *testing.T) {
	in := paperex.BusInstance()
	s := schedule(t, in, core.Basic, 0)
	res, err := Simulate(s, in.Graph, in.Arch, in.Spec, Scenario{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations[0].Trace != nil {
		t.Error("trace recorded without Config.Trace")
	}
}

func TestDeadlineChecking(t *testing.T) {
	in := paperex.BusInstance()
	s := schedule(t, in, core.FT1, 1)
	// Failure-free response is 8.0; the P2-crash transient is 10.5.
	res, err := Simulate(s, in.Graph, in.Arch, in.Spec, Single("P2", 1, 0), Config{
		Iterations: 2,
		Deadline:   9.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Iterations[0].DeadlineMet {
		t.Error("failure-free iteration meets the 9.0 deadline")
	}
	if res.Iterations[1].DeadlineMet {
		t.Error("transient iteration (10.5) misses the 9.0 deadline")
	}
	// Without a deadline every iteration reports DeadlineMet.
	res, err = Simulate(s, in.Graph, in.Arch, in.Spec, Scenario{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Iterations[0].DeadlineMet {
		t.Error("no deadline configured: DeadlineMet must default to true")
	}
}

func TestEventKindString(t *testing.T) {
	for k, want := range map[EventKind]string{
		EventOp: "op", EventComm: "comm", EventFailover: "failover", EventKill: "kill",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if EventKind(99).String() == "" {
		t.Error("unknown kind string empty")
	}
}
