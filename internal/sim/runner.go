package sim

import (
	"math"
	"sort"
)

// Runner is the mutable per-worker execution state of a compiled Model: a
// handful of flat arrays sized once at construction and rewound between
// iterations and scenarios, so a steady-state run allocates ~nothing. A
// Runner is not safe for concurrent use; give each worker its own (they can
// all share one Model).
type Runner struct {
	m *Model

	// Cross-iteration failure state, rewound by Reset between scenarios.
	hasFail     []bool // per processor
	fail        []Failure
	hasLinkFail []bool // per link
	linkFail    []LinkFailure
	detected    []bool // per processor: FT1 fail flags

	// Per-iteration state, rewound by resetIteration.
	seqIdx      []int32   // per processor: absolute next-instance index
	seqReady    []float64 // per processor: sequencer ready date
	seqDead     []bool    // per processor
	instState   []opState // per instance
	opDone      []float64 // [op*numProcs+proc]; NaN = not executed
	commAvail   []float64 // [edge*numProcs+proc]; NaN = not received
	linkFree    []float64 // per link
	sendState   []sendState
	sendHopDone []int32
	sendHopTime []float64
	sendArrival []float64
	sendSkipped []bool
	grSettled   []bool
	queueIdx    []int32 // per link: absolute next-queue-entry index

	messages, lost, missed        int
	timeouts, falseDet, failovers int
	opsExec, opsCancel            int
	lastActivity                  float64
	it                            int
	trace                         bool
	events                        []Event
	resolveDirty                  bool
}

// NewRunner allocates a worker state sized for the model.
func (m *Model) NewRunner() *Runner {
	nP, nL := len(m.procs), len(m.links)
	return &Runner{
		m:           m,
		hasFail:     make([]bool, nP),
		fail:        make([]Failure, nP),
		hasLinkFail: make([]bool, nL),
		linkFail:    make([]LinkFailure, nL),
		detected:    make([]bool, nP),
		seqIdx:      make([]int32, nP),
		seqReady:    make([]float64, nP),
		seqDead:     make([]bool, nP),
		instState:   make([]opState, len(m.instOp)),
		opDone:      make([]float64, len(m.ops)*nP),
		commAvail:   make([]float64, len(m.edges)*nP),
		linkFree:    make([]float64, nL),
		sendState:   make([]sendState, len(m.senders)),
		sendHopDone: make([]int32, len(m.senders)),
		sendHopTime: make([]float64, len(m.senders)),
		sendArrival: make([]float64, len(m.senders)),
		sendSkipped: make([]bool, len(m.senders)),
		grSettled:   make([]bool, len(m.groups)),
		queueIdx:    make([]int32, nL),
	}
}

// Reset rewinds the cross-scenario failure state (injected failures and FT1
// fail flags) so the Runner can execute the next scenario. It allocates
// nothing.
func (r *Runner) Reset() {
	for i := range r.hasFail {
		r.hasFail[i] = false
		r.detected[i] = false
	}
	for i := range r.hasLinkFail {
		r.hasLinkFail[i] = false
	}
}

// install records the (already validated) scenario in the per-index failure
// tables. Installing a failure before its activation iteration is
// behaviorally inert: every silence helper windows on the iteration number.
func (r *Runner) install(sc Scenario) {
	r.Reset()
	for _, f := range sc.Failures {
		r.hasFail[r.m.procIdx[f.Proc]] = true
		r.fail[r.m.procIdx[f.Proc]] = f
	}
	for _, f := range sc.Links {
		r.hasLinkFail[r.m.linkIdx[f.Link]] = true
		r.linkFail[r.m.linkIdx[f.Link]] = f
	}
}

// resetIteration rewinds the per-iteration state. Allocation-free.
func (r *Runner) resetIteration(it int) {
	m := r.m
	for _, p := range m.schedProcs {
		r.seqIdx[p] = m.seqStart[p]
		r.seqReady[p] = 0
		r.seqDead[p] = false
	}
	for i := range r.instState {
		r.instState[i] = opPending
	}
	fillNaN(r.opDone)
	fillNaN(r.commAvail)
	for i := range r.linkFree {
		r.linkFree[i] = 0
		r.queueIdx[i] = m.queueStart[i]
	}
	for i := range r.sendState {
		r.sendState[i] = sendUnknown
		r.sendHopDone[i] = 0
		r.sendHopTime[i] = 0
		r.sendArrival[i] = 0
		r.sendSkipped[i] = r.detected[m.senders[i].proc]
	}
	for i := range r.grSettled {
		r.grSettled[i] = false
	}
	r.messages, r.lost, r.missed = 0, 0, 0
	r.timeouts, r.falseDet, r.failovers = 0, 0, 0
	r.opsExec, r.opsCancel = 0, 0
	r.lastActivity = 0
	r.it = it
	r.events = nil
	r.resolveDirty = true
}

// fillNaN writes the not-yet sentinel over a state column.
func fillNaN(s []float64) {
	nan := math.NaN()
	for i := range s {
		s[i] = nan
	}
}

// Run executes the scenario with full result fidelity: the returned Result
// is reflect.DeepEqual to SimulateLegacy's on the same inputs. Per-iteration
// Outputs maps and the Result itself allocate; campaigns that only need
// aggregate statistics should use RunStats.
func (r *Runner) Run(sc Scenario, cfg Config) (*Result, error) {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 1
	}
	if err := sc.validate(r.m.a); err != nil {
		return nil, err
	}
	r.install(sc)
	var ins simInstruments
	ins.resolve(cfg.Obs)
	res := &Result{}
	for it := 0; it < cfg.Iterations; it++ {
		if cfg.Cancel != nil && cfg.Cancel.Load() {
			return nil, ErrCanceled
		}
		transient := false
		for _, f := range sc.Failures {
			if f.Iteration == it {
				transient = true
				ins.faults.Inc()
			}
		}
		for _, f := range sc.Links {
			if f.Iteration == it {
				transient = true
				ins.faults.Inc()
			}
		}
		iterSpan := cfg.Obs.StartSpan("sim", "iteration")
		r.trace = cfg.Trace
		r.runCompiled(it)
		iterSpan.End()
		ins.accumulateRunner(r)
		ir := r.buildIterationResult()
		ir.Index = it
		ir.Transient = transient
		ir.DeadlineMet = cfg.Deadline <= 0 || (ir.Completed && ir.ResponseTime <= cfg.Deadline+1e-9)
		res.Iterations = append(res.Iterations, ir)
	}
	// The failure accumulators list only failures that activated within the
	// simulated horizon (the legacy engine never learns of later ones);
	// scanning by ascending ID yields them already sorted.
	for p := range r.hasFail {
		if r.hasFail[p] && r.fail[p].Iteration < cfg.Iterations {
			res.FailedProcs = append(res.FailedProcs, r.m.procs[p])
			if !r.fail[p].Permanent() {
				res.RecoveredProcs = append(res.RecoveredProcs, r.m.procs[p])
			}
		}
		if r.detected[p] {
			res.DetectedProcs = append(res.DetectedProcs, r.m.procs[p])
		}
	}
	for l := range r.hasLinkFail {
		if r.hasLinkFail[l] && r.linkFail[l].Iteration < cfg.Iterations {
			res.FailedLinks = append(res.FailedLinks, r.m.links[l])
		}
	}
	return res, nil
}

// RunConfig tunes a lean statistics-only run.
type RunConfig struct {
	// Iterations is the number of iterations to simulate (default 1).
	Iterations int
	// Deadline, when positive, is the per-iteration response-time
	// constraint counted in Stats.DeadlineMisses.
	Deadline float64
}

// Stats is the allocation-free aggregate of one scenario run: everything a
// campaign folds into its streaming accumulators, without the per-iteration
// Outputs maps and event slices of a full Result.
type Stats struct {
	// Iterations simulated.
	Iterations int
	// Completed counts iterations that produced every output.
	Completed int
	// DeadlineMisses counts iterations whose response time exceeded the
	// deadline (or that did not complete), when a deadline was set.
	DeadlineMisses int
	// WorstResponse and SumResponse aggregate the per-iteration response
	// times (WorstIteration is the iteration achieving WorstResponse).
	WorstResponse  float64
	WorstIteration int
	SumResponse    float64
	// Messages, Timeouts, FalseDetections, Failovers, Lost, Missed,
	// OpsExecuted, and OpsCancelled total the engine tallies over all
	// iterations.
	Messages        int
	Timeouts        int
	FalseDetections int
	Failovers       int
	Lost            int
	Missed          int
	OpsExecuted     int
	OpsCancelled    int
}

// RunStats executes the scenario and returns aggregate statistics only. In
// steady state it allocates nothing: the scenario must already be valid
// (campaign generators construct valid ones by design; use Model.Validate
// for untrusted input).
func (r *Runner) RunStats(sc Scenario, cfg RunConfig) Stats {
	iters := cfg.Iterations
	if iters <= 0 {
		iters = 1
	}
	r.install(sc)
	r.trace = false
	var st Stats
	st.Iterations = iters
	for it := 0; it < iters; it++ {
		r.runCompiled(it)
		resp, completed := r.iterationResponse()
		st.SumResponse += resp
		if resp > st.WorstResponse {
			st.WorstResponse = resp
			st.WorstIteration = it
		}
		if completed {
			st.Completed++
		}
		if cfg.Deadline > 0 && !(completed && resp <= cfg.Deadline+1e-9) {
			st.DeadlineMisses++
		}
		st.Messages += r.messages
		st.Timeouts += r.timeouts
		st.FalseDetections += r.falseDet
		st.Failovers += r.failovers
		st.Lost += r.lost
		st.Missed += r.missed
		st.OpsExecuted += r.opsExec
		st.OpsCancelled += r.opsCancel
	}
	return st
}

// iterationResponse computes the response time and completeness of the just
// finished iteration without allocating.
func (r *Runner) iterationResponse() (resp float64, completed bool) {
	m := r.m
	nP := len(m.procs)
	completed = true
	for _, out := range m.outOps {
		best := math.Inf(1)
		for _, p := range m.schedProcs {
			if d := r.opDone[int(out)*nP+int(p)]; !math.IsNaN(d) && d < best {
				best = d
			}
		}
		if math.IsInf(best, 1) {
			completed = false
			continue
		}
		if best > resp {
			resp = best
		}
	}
	return resp, completed
}

// buildIterationResult assembles the full per-iteration report, mirroring
// the legacy engine's report().
func (r *Runner) buildIterationResult() IterationResult {
	sort.SliceStable(r.events, func(i, j int) bool { return r.events[i].Start < r.events[j].Start })
	ir := IterationResult{
		Trace:           r.events,
		Outputs:         make(map[string]bool),
		MessagesSent:    r.messages,
		TimeoutsFired:   r.timeouts,
		FalseDetections: r.falseDet,
		End:             r.lastActivity,
		Completed:       true,
	}
	m := r.m
	nP := len(m.procs)
	for oi, out := range m.outOps {
		best := math.Inf(1)
		for _, p := range m.schedProcs {
			if d := r.opDone[int(out)*nP+int(p)]; !math.IsNaN(d) && d < best {
				best = d
			}
		}
		produced := !math.IsInf(best, 1)
		ir.Outputs[m.outNames[oi]] = produced
		if !produced {
			ir.Completed = false
			continue
		}
		if best > ir.ResponseTime {
			ir.ResponseTime = best
		}
	}
	return ir
}

// accumulateRunner folds one finished iteration's tallies into the counters.
func (in *simInstruments) accumulateRunner(r *Runner) {
	in.delivered.Add(int64(r.messages))
	in.lost.Add(int64(r.lost))
	in.missed.Add(int64(r.missed))
	in.timeouts.Add(int64(r.timeouts))
	in.falseDet.Add(int64(r.falseDet))
	in.failovers.Add(int64(r.failovers))
	in.opsExec.Add(int64(r.opsExec))
	in.opsCancel.Add(int64(r.opsCancel))
}
