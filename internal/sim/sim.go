// Package sim is a discrete-event simulator for the real-time distributed
// executive generated from a static schedule (Section 4.1 of the paper). It
// executes the schedule's per-processor operation sequences and per-link
// communication orders in virtual time, injects permanent fail-stop
// processor failures, and reports per-iteration response times and output
// delivery.
//
// The simulator implements the runtime semantics of the three scheduler
// families:
//
//   - basic: every transfer has a single sender; a failed sender blocks its
//     consumers forever (the baseline is not fault-tolerant);
//   - ft1: transfers are failover chains (Fig. 12): the main replica sends;
//     each backup watches for the previous senders' messages and fails over
//     after a statically computed timeout, so a transient iteration pays
//     detection delays while subsequent iterations skip processors already
//     marked faulty;
//   - ft2: every replica sends; consumers use the first arrival and discard
//     the rest, so failures never add waiting time.
//
// Failures persist across iterations (permanent fail-stop, Section 5.1).
//
// Two execution engines implement the same semantics. Simulate compiles the
// schedule once into an immutable integer-indexed Model and runs it; the
// model can also be compiled explicitly with Compile and shared read-only by
// many Runners for Monte-Carlo campaigns (internal/campaign). SimulateLegacy
// is the original string-keyed engine, retained as the differential-testing
// reference; both paths produce reflect.DeepEqual Results.
package sim

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"ftsched/internal/arch"
	"ftsched/internal/graph"
	"ftsched/internal/obs"
	"ftsched/internal/sched"
	"ftsched/internal/spec"
)

// ErrCanceled reports that a simulation was aborted by Config.Cancel before
// completing its iterations.
var ErrCanceled = errors.New("sim: simulation canceled")

// Failure is one fail-stop processor failure. With the zero recovery fields
// it is permanent (the paper's Section 5.1 model); setting a recovery point
// makes it an intermittent fail-silent outage (the extension sketched in
// Section 6.1, Item 3): the processor is silent during the outage — its
// operations and transfers are lost, and messages addressed to it during
// the outage are missed — then resumes its static sequence. On a bus, a
// processor wrongly or transiently marked faulty is re-integrated as soon
// as the healthy processors observe one of its messages again.
type Failure struct {
	// Proc is the processor that fails.
	Proc string `json:"proc"`
	// Iteration is the 0-based iteration during which the failure occurs.
	Iteration int `json:"iteration"`
	// At is the failure date in iteration-local time. Activity completing
	// at or before At succeeds; anything in flight at At is lost.
	At float64 `json:"at"`
	// RecoverIteration and RecoverAt, when set (RecoverAt > 0 or
	// RecoverIteration > Iteration), give the iteration-local instant the
	// processor comes back to life. The recovery point must be after the
	// failure point.
	RecoverIteration int     `json:"recover_iteration,omitempty"`
	RecoverAt        float64 `json:"recover_at,omitempty"`
}

// Permanent reports whether the failure has no recovery point.
func (f Failure) Permanent() bool {
	return f.RecoverAt == 0 && f.RecoverIteration == 0
}

// LinkFailure is one fail-silent outage of a communication link: frames in
// flight when the outage begins are lost, frames scheduled during a
// permanent outage are never transmitted, and a bounded outage delays
// pending transfers until the recovery point. The paper assumes links do not
// fail (Section 5.1); this extension probes that assumption — on a bus it
// makes every FT1 timeout chain collapse at once, the stated weakness of
// the first solution.
type LinkFailure struct {
	// Link is the link that fails.
	Link string `json:"link"`
	// Iteration is the 0-based iteration during which the outage begins.
	Iteration int `json:"iteration"`
	// At is the outage date in iteration-local time.
	At float64 `json:"at"`
	// RecoverIteration and RecoverAt, when set, give the instant the link
	// carries frames again; zero values mean the outage is permanent.
	RecoverIteration int     `json:"recover_iteration,omitempty"`
	RecoverAt        float64 `json:"recover_at,omitempty"`
}

// Permanent reports whether the link outage has no recovery point.
func (f LinkFailure) Permanent() bool {
	return f.RecoverAt == 0 && f.RecoverIteration == 0
}

// Intermittent returns a fail-silent outage of proc from (iteration, at) to
// (recIteration, recAt).
func Intermittent(proc string, iteration int, at float64, recIteration int, recAt float64) Scenario {
	return Scenario{Failures: []Failure{{
		Proc: proc, Iteration: iteration, At: at,
		RecoverIteration: recIteration, RecoverAt: recAt,
	}}}
}

// Scenario is a set of failures injected during a simulation.
type Scenario struct {
	Failures []Failure `json:"failures,omitempty"`
	// Links holds fail-silent link outages (none in the paper's model).
	Links []LinkFailure `json:"links,omitempty"`
}

// Single returns a scenario with one failure.
func Single(proc string, iteration int, at float64) Scenario {
	return Scenario{Failures: []Failure{{Proc: proc, Iteration: iteration, At: at}}}
}

// SingleLink returns a scenario with one permanent link outage.
func SingleLink(link string, iteration int, at float64) Scenario {
	return Scenario{Links: []LinkFailure{{Link: link, Iteration: iteration, At: at}}}
}

// validate checks the scenario against the architecture. Both engines share
// it so their error behavior stays identical.
func (sc Scenario) validate(a *arch.Architecture) error {
	seen := map[string]bool{}
	for _, f := range sc.Failures {
		if !a.HasProcessor(f.Proc) {
			return fmt.Errorf("sim: scenario fails unknown processor %q", f.Proc)
		}
		if f.Iteration < 0 || f.At < 0 {
			return fmt.Errorf("sim: scenario failure of %q has negative iteration or date", f.Proc)
		}
		if !f.Permanent() {
			if f.RecoverIteration < f.Iteration ||
				(f.RecoverIteration == f.Iteration && f.RecoverAt <= f.At) {
				return fmt.Errorf("sim: recovery of %q precedes its failure", f.Proc)
			}
		}
		if seen[f.Proc] {
			return fmt.Errorf("sim: processor %q fails twice", f.Proc)
		}
		seen[f.Proc] = true
	}
	seenLink := map[string]bool{}
	for _, f := range sc.Links {
		if a.Link(f.Link) == nil {
			return fmt.Errorf("sim: scenario fails unknown link %q", f.Link)
		}
		if f.Iteration < 0 || f.At < 0 {
			return fmt.Errorf("sim: scenario failure of link %q has negative iteration or date", f.Link)
		}
		if !f.Permanent() {
			if f.RecoverIteration < f.Iteration ||
				(f.RecoverIteration == f.Iteration && f.RecoverAt <= f.At) {
				return fmt.Errorf("sim: recovery of link %q precedes its failure", f.Link)
			}
		}
		if seenLink[f.Link] {
			return fmt.Errorf("sim: link %q fails twice", f.Link)
		}
		seenLink[f.Link] = true
	}
	return nil
}

// Config tunes a simulation run.
type Config struct {
	// Iterations is the number of iterations of the reactive loop to
	// simulate. Defaults to 1.
	Iterations int
	// Deadline, when positive, is the real-time constraint checked on every
	// iteration: IterationResult.DeadlineMet reports whether the response
	// time stayed within it.
	Deadline float64
	// Trace records the executed activities of each iteration in
	// IterationResult.Trace, in chronological order.
	Trace bool
	// Obs, when non-nil, accumulates simulation counters across iterations
	// (messages delivered and lost, missed receptions, timeout firings,
	// failovers, fault activations, operations executed and cancelled) and a
	// span per iteration. Results are identical with or without a sink.
	Obs *obs.Sink
	// Cancel, when non-nil, is a cooperative cancellation flag: the
	// simulator polls it between iterations and aborts with ErrCanceled
	// when it is raised. A run that completes is bit-identical whether or
	// not a flag was attached. Callers with a context should prefer the
	// ftsched.SimulateContext entry point, which raises the flag when the
	// context is done.
	Cancel *atomic.Bool
}

// EventKind classifies trace events.
type EventKind int

// Trace event kinds.
const (
	// EventOp is an operation replica execution.
	EventOp EventKind = iota + 1
	// EventComm is a completed transfer hop.
	EventComm
	// EventFailover is a backup sender taking over after timeouts expired.
	EventFailover
	// EventKill is an operation lost to a processor failure.
	EventKill
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventOp:
		return "op"
	case EventComm:
		return "comm"
	case EventFailover:
		return "failover"
	case EventKill:
		return "kill"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one executed activity of a simulated iteration.
type Event struct {
	Kind EventKind
	// What identifies the activity: an operation name or a dependency.
	What string
	// Where is the processor (ops) or link (comms).
	Where string
	// Start and End are the actual dates.
	Start, End float64
}

// IterationResult reports one simulated iteration.
type IterationResult struct {
	// Index is the 0-based iteration number.
	Index int
	// ResponseTime is the latest delivery date over the produced outputs
	// (for each output extio, the earliest completion among its executed
	// replicas). Zero when no output was produced.
	ResponseTime float64
	// End is the date of the last activity (operation or transfer) in the
	// iteration.
	End float64
	// Outputs maps each output extio to whether at least one replica of it
	// executed.
	Outputs map[string]bool
	// Completed reports whether every output was produced.
	Completed bool
	// MessagesSent counts the inter-processor transfers that actually
	// occupied a link.
	MessagesSent int
	// TimeoutsFired counts the failover timeouts that expired (FT1).
	TimeoutsFired int
	// FalseDetections counts senders that were marked faulty because their
	// message arrived after its deadline although they were alive (FT1,
	// Section 6.1 Item 3).
	FalseDetections int
	// Transient reports whether a new failure occurred in this iteration.
	Transient bool
	// DeadlineMet reports whether the response time stayed within
	// Config.Deadline; true when no deadline was configured.
	DeadlineMet bool
	// Trace holds the executed activities when Config.Trace is set.
	Trace []Event
}

// Result is the outcome of a simulation.
type Result struct {
	// Iterations holds one entry per simulated iteration.
	Iterations []IterationResult
	// FailedProcs lists, sorted, the processors that failed at some point.
	FailedProcs []string
	// RecoveredProcs lists, sorted, the processors whose failure was an
	// intermittent outage with a recovery point.
	RecoveredProcs []string
	// DetectedProcs lists, sorted, the processors marked faulty by the
	// failover machinery (FT1) and still marked at the end (a recovered
	// processor observed on the bus is un-marked).
	DetectedProcs []string
	// FailedLinks lists, sorted, the links that suffered an outage at some
	// point.
	FailedLinks []string
}

// Simulate executes the schedule under the scenario. The graph,
// architecture, and constraints must be the ones the schedule was produced
// from.
//
// The schedule is compiled into a dense Model first (see Compile); callers
// running many scenarios against one schedule should compile once and reuse
// Runners instead, which amortizes this step to zero.
func Simulate(s *sched.Schedule, g *graph.Graph, a *arch.Architecture, sp *spec.Spec, sc Scenario, cfg Config) (*Result, error) {
	if err := sc.validate(a); err != nil {
		return nil, err
	}
	m, err := Compile(s, g, a, sp)
	if err != nil {
		return nil, err
	}
	return m.NewRunner().Run(sc, cfg)
}

// SimulateLegacy executes the schedule under the scenario with the original
// string-keyed single-scenario engine. It is retained as the reference
// implementation for differential tests and benchmarks (the compiled path
// must stay reflect.DeepEqual to it); new callers should use Simulate.
func SimulateLegacy(s *sched.Schedule, g *graph.Graph, a *arch.Architecture, sp *spec.Spec, sc Scenario, cfg Config) (*Result, error) {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 1
	}
	if err := sc.validate(a); err != nil {
		return nil, err
	}

	st := &simState{
		failures:     make(map[string]Failure),
		linkFailures: make(map[string]LinkFailure),
		detected:     make(map[string]bool),
	}
	var ins simInstruments
	ins.resolve(cfg.Obs)
	res := &Result{}
	for it := 0; it < cfg.Iterations; it++ {
		if cfg.Cancel != nil && cfg.Cancel.Load() {
			return nil, ErrCanceled
		}
		transient := false
		for _, f := range sc.Failures {
			if f.Iteration == it {
				st.failures[f.Proc] = f
				transient = true
				ins.faults.Inc()
			}
		}
		for _, f := range sc.Links {
			if f.Iteration == it {
				st.linkFailures[f.Link] = f
				transient = true
				ins.faults.Inc()
			}
		}
		iterSpan := cfg.Obs.StartSpan("sim", "iteration")
		e := newEngine(s, g, a, sp, st, it)
		e.trace = cfg.Trace
		ir := e.run()
		iterSpan.End()
		ins.accumulate(e)
		ir.Index = it
		ir.Transient = transient
		ir.DeadlineMet = cfg.Deadline <= 0 || (ir.Completed && ir.ResponseTime <= cfg.Deadline+1e-9)
		res.Iterations = append(res.Iterations, ir)
	}
	for p, f := range st.failures { //ftlint:order-insensitive both accumulators are sorted immediately below
		res.FailedProcs = append(res.FailedProcs, p)
		if !f.Permanent() {
			res.RecoveredProcs = append(res.RecoveredProcs, p)
		}
	}
	sort.Strings(res.FailedProcs)
	sort.Strings(res.RecoveredProcs)
	for p := range st.detected { //ftlint:order-insensitive the accumulator is sorted immediately below
		res.DetectedProcs = append(res.DetectedProcs, p)
	}
	sort.Strings(res.DetectedProcs)
	for l := range st.linkFailures { //ftlint:order-insensitive the accumulator is sorted immediately below
		res.FailedLinks = append(res.FailedLinks, l)
	}
	sort.Strings(res.FailedLinks)
	return res, nil
}

// simState carries failure knowledge across iterations.
type simState struct {
	failures     map[string]Failure
	linkFailures map[string]LinkFailure
	detected     map[string]bool
}

// silence returns the window [from, to) of iteration-local time during
// which proc is silent in iteration it. ok is false when proc is fully
// alive during the iteration; a permanent failure yields to = +Inf.
func (st *simState) silence(proc string, it int) (from, to float64, ok bool) {
	f, exists := st.failures[proc]
	if !exists {
		return 0, 0, false
	}
	return silenceWindow(f.Iteration, f.At, f.RecoverIteration, f.RecoverAt, f.Permanent(), it)
}

// linkSilence is silence for link outages.
func (st *simState) linkSilence(link string, it int) (from, to float64, ok bool) {
	f, exists := st.linkFailures[link]
	if !exists {
		return 0, 0, false
	}
	return silenceWindow(f.Iteration, f.At, f.RecoverIteration, f.RecoverAt, f.Permanent(), it)
}

// silenceWindow computes the iteration-local silence window of a failure
// given its activation and recovery points; shared by processor and link
// failures and by both engines.
func silenceWindow(iter int, at float64, recIter int, recAt float64, permanent bool, it int) (from, to float64, ok bool) {
	if it < iter {
		return 0, 0, false
	}
	from = 0.0
	if it == iter {
		from = at
	}
	if permanent {
		return from, math.Inf(1), true
	}
	switch {
	case it > recIter:
		return 0, 0, false
	case it == recIter:
		to = recAt
	default:
		to = math.Inf(1)
	}
	if to <= from {
		return 0, 0, false
	}
	return from, to, true
}

// deadAt keeps the permanent-failure view used by failover accounting: the
// local date at which proc stops for good during iteration it (+Inf while
// alive or merely intermittent).
func (st *simState) deadAt(proc string, it int) float64 {
	f, ok := st.failures[proc]
	if !ok || !f.Permanent() {
		return math.Inf(1)
	}
	if f.Iteration < it {
		return 0
	}
	if f.Iteration == it {
		return f.At
	}
	return math.Inf(1)
}

// silentDuring reports whether proc is silent at any point of [from, to).
func (st *simState) silentDuring(proc string, it int, from, to float64) bool {
	f, t, ok := st.silence(proc, it)
	if !ok {
		return false
	}
	return from < t && f < to
}

// linkSilentDuring reports whether link is silent at any point of [from, to).
func (st *simState) linkSilentDuring(link string, it int, from, to float64) bool {
	f, t, ok := st.linkSilence(link, it)
	if !ok {
		return false
	}
	return from < t && f < to
}

// silentAt reports whether proc is silent at instant t.
func (st *simState) silentAt(proc string, it int, t float64) bool {
	f, to, ok := st.silence(proc, it)
	return ok && t >= f-1e-9 && t < to
}
