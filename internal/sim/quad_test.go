package sim

import (
	"fmt"
	"testing"

	"ftsched/internal/arch"
	"ftsched/internal/graph"
	"ftsched/internal/paperex"
	"ftsched/internal/spec"
)

// quadInstance builds a 4-processor instance able to tolerate K=2: the paper
// graph with its extios allowed everywhere, on a fully connected 4-node
// point-to-point network plus a bus (so both FT heuristics are at home).
func quadInstance(t *testing.T) *paperex.Instance {
	t.Helper()
	g := paperex.Algorithm()
	a := arch.New("quad")
	procs := []string{"P1", "P2", "P3", "P4"}
	for _, p := range procs {
		if err := a.AddProcessor(p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < len(procs); i++ {
		for j := i + 1; j < len(procs); j++ {
			if err := a.AddLink(fmt.Sprintf("L%d%d", i+1, j+1), procs[i], procs[j]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := a.AddBus("can", procs...); err != nil {
		t.Fatal(err)
	}
	sp := spec.New()
	execs := map[string]float64{"I": 1, "A": 2, "B": 1.5, "C": 1.5, "D": 1, "E": 1, "O": 1.5}
	for op, d := range execs {
		for _, p := range procs {
			if err := sp.SetExec(op, p, d); err != nil {
				t.Fatal(err)
			}
		}
	}
	comms := map[graph.EdgeKey]float64{
		{Src: "I", Dst: "A"}: 1.25,
		{Src: "A", Dst: "B"}: 0.5,
		{Src: "A", Dst: "C"}: 0.5,
		{Src: "A", Dst: "D"}: 0.5,
		{Src: "B", Dst: "E"}: 0.6,
		{Src: "C", Dst: "E"}: 0.8,
		{Src: "D", Dst: "E"}: 1,
		{Src: "E", Dst: "O"}: 1,
	}
	for e, d := range comms {
		if err := sp.SetCommUniform(a, e, d); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp.Validate(g, a); err != nil {
		t.Fatal(err)
	}
	return &paperex.Instance{Graph: g, Arch: a, Spec: sp, K: 2}
}
