package sim

import (
	"math"
	"sort"

	"ftsched/internal/arch"
	"ftsched/internal/graph"
	"ftsched/internal/obs"
	"ftsched/internal/sched"
	"ftsched/internal/spec"
)

// simInstruments holds the simulator's pre-resolved counters; the zero value
// is the disabled state.
type simInstruments struct {
	faults    *obs.Counter // failure activations injected by the scenario
	delivered *obs.Counter // transfers whose final hop arrived
	lost      *obs.Counter // transfers lost to a mid-frame sender silence
	missed    *obs.Counter // receptions missed by a silent receiver
	timeouts  *obs.Counter // FT1 failover timeouts that expired
	falseDet  *obs.Counter // detection mistakes (sender alive but late)
	failovers *obs.Counter // passive backup transfers activated
	opsExec   *obs.Counter // operation replicas executed
	opsCancel *obs.Counter // operation replicas cancelled by failures
}

// resolve registers the simulator's counters on the sink (no-op when nil).
func (in *simInstruments) resolve(s *obs.Sink) {
	if s == nil {
		return
	}
	in.faults = s.Counter("sim.faults.activated")
	in.delivered = s.Counter("sim.messages.delivered")
	in.lost = s.Counter("sim.messages.lost")
	in.missed = s.Counter("sim.receptions.missed")
	in.timeouts = s.Counter("sim.timeouts.fired")
	in.falseDet = s.Counter("sim.detections.false")
	in.failovers = s.Counter("sim.failovers")
	in.opsExec = s.Counter("sim.ops.executed")
	in.opsCancel = s.Counter("sim.ops.cancelled")
}

// accumulate folds one finished iteration's tallies into the counters.
func (in *simInstruments) accumulate(e *engine) {
	in.delivered.Add(int64(e.messages))
	in.lost.Add(int64(e.lost))
	in.missed.Add(int64(e.missed))
	in.timeouts.Add(int64(e.timeouts))
	in.falseDet.Add(int64(e.falseDet))
	in.failovers.Add(int64(e.failovers))
	in.opsExec.Add(int64(e.opsExec))
	in.opsCancel.Add(int64(e.opsCancel))
}

const eps = 1e-9

// opState tracks one operation replica instance through an iteration.
type opState int

const (
	opPending opState = iota
	opDone
	opCancelled // processor dead, or killed mid-execution
)

// opInst is one operation replica in the per-processor static sequence.
type opInst struct {
	slot  *sched.OpSlot
	state opState
	done  float64
}

// opProcKey addresses an executed replica.
type opProcKey struct {
	op, proc string
}

// edgeProcKey addresses the availability of an edge's value on a processor.
type edgeProcKey struct {
	edge graph.EdgeKey
	proc string
}

// sendState tracks one sender's transfer.
type sendState int

const (
	sendUnknown sendState = iota
	sendActive            // hops partially executed
	sendDone
	sendNever // sender dead, message lost, or failover preempted
)

// hop is one link traversal of a transfer.
type hop struct {
	link     string
	from, to string
	dur      float64
}

// sender is one replica's transfer within a delivery group.
type sender struct {
	rank     int
	proc     string
	srcOp    string // producing operation (the group edge's source)
	hops     []hop
	deadline float64 // static worst-case arrival (FT1); +Inf otherwise
	passive  bool    // FT1 backup reservation, activated by failover
	skipped  bool    // sender already marked faulty at iteration start

	state   sendState
	hopDone int     // number of hops completed
	hopTime float64 // completion date of the last executed hop
	arrival float64 // final arrival date when state == sendDone
}

// group is one delivery: all senders able to provide one edge's value to one
// destination (a processor, or every processor on a bus for broadcasts).
type group struct {
	edge      graph.EdgeKey
	broadcast bool
	link      string // broadcast bus
	dst       string // destination processor for point-to-point groups
	chain     bool   // FT1 failover semantics
	senders   []*sender

	settled  bool // no further failover can fire (fast path for nextAction)
	rcvCache []string
}

// receivers returns the processors that observe this group's arrivals.
func (g *group) receivers(a *arch.Architecture) []string {
	if g.rcvCache != nil {
		return g.rcvCache
	}
	if g.broadcast {
		g.rcvCache = a.Link(g.link).Endpoints()
	} else {
		g.rcvCache = []string{g.dst}
	}
	return g.rcvCache
}

// queueEntry is one active hop in a link's static communication order. The
// communication units execute their comms in this total order (Section 4.4);
// entries whose sender is known to never transmit are skipped.
type queueEntry struct {
	gr  *group
	sd  *sender
	hop int
}

// engine simulates one iteration.
type engine struct {
	s  *sched.Schedule
	g  *graph.Graph
	a  *arch.Architecture
	sp *spec.Spec
	st *simState
	it int

	seq      map[string][]*opInst
	insts    map[opProcKey]*opInst
	seqIdx   map[string]int
	seqReady map[string]float64
	seqDead  map[string]bool

	opDone    map[opProcKey]float64
	commAvail map[edgeProcKey]float64
	linkFree  map[string]float64
	groups    []*group
	queues    map[string][]*queueEntry
	queueIdx  map[string]int

	messages     int
	lost         int
	missed       int
	timeouts     int
	falseDet     int
	failovers    int
	opsExec      int
	opsCancel    int
	lastActivity float64

	trace  bool
	events []Event

	// resolveDirty triggers the sender-resolution sweep: set when a
	// processor dies or an operation instance is cancelled.
	resolveDirty bool
}

// record appends a trace event when tracing is enabled.
func (e *engine) record(kind EventKind, what, where string, start, end float64) {
	if !e.trace {
		return
	}
	e.events = append(e.events, Event{Kind: kind, What: what, Where: where, Start: start, End: end})
}

func newEngine(s *sched.Schedule, g *graph.Graph, a *arch.Architecture, sp *spec.Spec, st *simState, it int) *engine {
	e := &engine{
		s: s, g: g, a: a, sp: sp, st: st, it: it,
		seq:       make(map[string][]*opInst),
		seqIdx:    make(map[string]int),
		seqReady:  make(map[string]float64),
		seqDead:   make(map[string]bool),
		opDone:    make(map[opProcKey]float64),
		commAvail: make(map[edgeProcKey]float64),
		linkFree:  make(map[string]float64),
		queueIdx:  make(map[string]int),
	}
	e.insts = make(map[opProcKey]*opInst, s.NumOpSlots())
	for _, p := range s.Procs() {
		slots := s.ProcSlots(p)
		insts := make([]*opInst, 0, len(slots))
		for _, sl := range slots {
			inst := &opInst{slot: sl}
			insts = append(insts, inst)
			e.insts[opProcKey{op: sl.Op, proc: p}] = inst
		}
		e.seq[p] = insts
	}
	e.buildGroups()
	e.resolveDirty = true
	return e
}

// buildGroups assembles delivery groups from the schedule's exported
// delivery structure (sched.Deliveries, shared with the static certifier)
// and the per-link static execution order of the active hops.
func (e *engine) buildGroups() {
	type staticHop struct {
		entry *queueEntry
		start float64
		id    int // transfer ID, tie-breaking equal start dates
		hop   int
	}
	perLink := map[string][]staticHop{}
	for _, d := range e.s.Deliveries() {
		gr := &group{
			edge:      d.Edge,
			broadcast: d.Broadcast,
			link:      d.Link,
			dst:       d.Dst,
			chain:     d.Chain,
		}
		for _, dsd := range d.Senders {
			sd := &sender{
				rank:     dsd.Rank,
				proc:     dsd.Proc,
				srcOp:    d.Edge.Src,
				deadline: dsd.Deadline, // FT1: static worst-case arrival = detection date
				passive:  dsd.Passive,
				skipped:  e.st.detected[dsd.Proc],
			}
			for i, h := range dsd.Hops {
				to := h.To
				if to == "" {
					to = h.From // broadcast: receivers resolved via the bus
				}
				sd.hops = append(sd.hops, hop{link: h.Link, from: h.From, to: to, dur: h.End - h.Start})
				if !h.Passive {
					perLink[h.Link] = append(perLink[h.Link], staticHop{
						entry: &queueEntry{gr: gr, sd: sd, hop: i},
						start: h.Start,
						id:    h.TransferID,
						hop:   i,
					})
				}
			}
			gr.senders = append(gr.senders, sd)
		}
		e.groups = append(e.groups, gr)
	}
	e.queues = make(map[string][]*queueEntry, len(perLink))
	for link, hops := range perLink { //ftlint:order-insensitive each iteration sorts and stores only its own ranged key's queue
		sort.SliceStable(hops, func(i, j int) bool {
			if math.Abs(hops[i].start-hops[j].start) > eps {
				return hops[i].start < hops[j].start
			}
			if hops[i].id != hops[j].id {
				return hops[i].id < hops[j].id
			}
			return hops[i].hop < hops[j].hop
		})
		q := make([]*queueEntry, len(hops))
		for i, h := range hops {
			q[i] = h.entry
		}
		e.queues[link] = q
	}
}

// run executes the iteration to quiescence and reports it.
func (e *engine) run() IterationResult {
	for { //ftlint:allow-nopoll bounded: every action consumes one pending op, hop, or failover of the finite schedule; Simulate polls Cancel between iterations
		e.resolve()
		kind, ref, idx, start := e.nextAction()
		if kind == actNone {
			// Quiescence: everything still pending is blocked forever
			// (missing inputs). Resolving those blocks can release failover
			// chains, so try again after unblocking.
			if e.unblock() {
				continue
			}
			break
		}
		switch kind {
		case actOp:
			e.execOp(ref.(string))
		case actQueueHop:
			e.execQueueHop(ref.(string))
		case actFailover:
			e.execFailover(ref.(*group), idx, start)
		}
	}
	e.finalTimeoutSweep()
	return e.report()
}

// unblock runs at quiescence, when no regular action can execute. Two
// causes are distinguished:
//
//  1. A failure rerouted a dependency to a transfer queued *behind* a link
//     entry that transitively waits on it — a cyclic wait the strict static
//     order cannot resolve. The link arbiter grants the medium to whoever
//     can actually transmit, so the earliest-queued ready entry executes
//     out of order (this never triggers in failure-free runs, where the
//     static order is always serviceable).
//  2. Otherwise every pending operation is provably blocked forever:
//     operations of permanently silent processors are cancelled, and
//     transfers whose sender will never produce resolve to sendNever so the
//     timeout machinery (FT1) or alternate replicas (FT2) take over.
//
// Reports whether progress was made.
func (e *engine) unblock() bool {
	if en, ready, ok := e.nextSkipHop(); ok {
		e.execHop(en.gr, en.sd, ready)
		return true
	}
	progress := false
	for _, p := range e.s.Procs() {
		if e.seqDead[p] || e.seqIdx[p] >= len(e.seq[p]) {
			continue
		}
		if _, to, ok := e.st.silence(p, e.it); ok && math.IsInf(to, 1) {
			e.killProc(p)
			progress = true
		}
	}
	for _, gr := range e.groups {
		for _, sd := range gr.senders {
			if sd.state != sendUnknown {
				continue
			}
			inst := e.instOf(sd.srcOp, sd.proc)
			if inst != nil && inst.state == opPending {
				sd.state = sendNever
				progress = true
			}
		}
	}
	return progress
}

// nextSkipHop scans every link's static order beyond its blocked head for
// the earliest-queued executable entry, returning the one with the
// earliest possible start across links.
func (e *engine) nextSkipHop() (*queueEntry, float64, bool) {
	links := make([]string, 0, len(e.queues))
	for l := range e.queues {
		links = append(links, l)
	}
	sort.Strings(links)
	var (
		best      *queueEntry
		bestReady float64
		bestStart = math.Inf(1)
	)
	for _, l := range links {
		q := e.queues[l]
		for i := e.queueIdx[l]; i < len(q); i++ {
			en := q[i]
			if en.sd.state == sendNever || en.sd.state == sendDone || en.sd.hopDone > en.hop {
				continue
			}
			ready, ok := e.hopDataReady(en)
			if !ok {
				continue // blocked entry: look further down the order
			}
			start := math.Max(ready, e.linkFree[l])
			if start < bestStart-eps {
				best, bestReady, bestStart = en, ready, start
			}
			break // only the earliest-queued ready entry per link
		}
	}
	return best, bestReady, best != nil
}

type actionKind int

const (
	actNone actionKind = iota
	actOp
	actQueueHop
	actFailover
)

// resolve performs time-free state transitions until a fixed point: dead
// processors cancel their sequences, and transfers whose sender will never
// produce or transmit the value resolve to sendNever.
func (e *engine) resolve() {
	if !e.resolveDirty {
		return
	}
	e.resolveDirty = false
	for changed := true; changed; { //ftlint:allow-nopoll bounded: each round that reports a change kills a processor or resolves a sender, both finite and monotone
		changed = false
		for _, p := range e.s.Procs() {
			if e.seqDead[p] {
				continue
			}
			// Silent for the whole iteration (permanent failure from an
			// earlier iteration, or an outage spanning this one).
			if from, to, ok := e.st.silence(p, e.it); ok && from == 0 && math.IsInf(to, 1) {
				e.killProc(p)
				changed = true
			}
		}
		for _, gr := range e.groups {
			for _, sd := range gr.senders {
				if sd.state != sendUnknown {
					continue
				}
				inst := e.instOf(sd.srcOp, sd.proc)
				if inst == nil || inst.state == opCancelled {
					sd.state = sendNever
					changed = true
				}
			}
		}
	}
}

// instOf returns the instance of op on proc, or nil.
func (e *engine) instOf(op, proc string) *opInst {
	return e.insts[opProcKey{op: op, proc: proc}]
}

// killProc cancels every remaining operation of a dead processor.
func (e *engine) killProc(p string) {
	for i := e.seqIdx[p]; i < len(e.seq[p]); i++ {
		if e.seq[p][i].state == opPending {
			e.seq[p][i].state = opCancelled
			e.opsCancel++
		}
	}
	e.seqIdx[p] = len(e.seq[p])
	e.seqDead[p] = true
	e.resolveDirty = true
}

// nextAction scans processors, link queues, and failover chains for the
// executable action with the earliest start date.
func (e *engine) nextAction() (actionKind, any, int, float64) {
	bestKind := actNone
	bestStart := math.Inf(1)
	var bestRef any
	bestIdx := -1

	for _, p := range e.s.Procs() {
		if start, ok := e.nextOpStart(p); ok && start < bestStart-eps {
			bestKind, bestStart, bestRef, bestIdx = actOp, start, p, -1
		}
	}
	links := make([]string, 0, len(e.queues))
	for l := range e.queues {
		links = append(links, l)
	}
	sort.Strings(links)
	for _, l := range links {
		if start, ok := e.nextQueueHopStart(l); ok && start < bestStart-eps {
			bestKind, bestStart, bestRef, bestIdx = actQueueHop, start, l, -1
		}
	}
	for _, gr := range e.groups {
		if !gr.chain || gr.settled {
			continue
		}
		if idx, start, ok := e.nextFailover(gr); ok && start < bestStart-eps {
			bestKind, bestStart, bestRef, bestIdx = actFailover, start, gr, idx
		}
	}
	return bestKind, bestRef, bestIdx, bestStart
}

// nextOpStart returns the earliest start of proc's next pending operation,
// if its inputs are available.
func (e *engine) nextOpStart(p string) (float64, bool) {
	i := e.seqIdx[p]
	if i >= len(e.seq[p]) || e.seqDead[p] {
		return 0, false
	}
	inst := e.seq[p][i]
	start := e.seqReady[p]
	for _, pred := range e.g.StrictPreds(inst.slot.Op) {
		at, ok := e.inputAvail(graph.EdgeKey{Src: pred, Dst: inst.slot.Op}, p)
		if !ok {
			return 0, false
		}
		if at > start {
			start = at
		}
	}
	// A processor inside a bounded outage resumes its sequence when it
	// comes back (fail-silent intermittent failure).
	if from, to, ok := e.st.silence(p, e.it); ok && !math.IsInf(to, 1) && start >= from-eps && start < to {
		start = to
	}
	return start, true
}

// inputAvail returns the earliest date edge's value is available on proc.
func (e *engine) inputAvail(edge graph.EdgeKey, proc string) (float64, bool) {
	best := math.Inf(1)
	if d, ok := e.opDone[opProcKey{op: edge.Src, proc: proc}]; ok {
		best = d
	}
	if d, ok := e.commAvail[edgeProcKey{edge: edge, proc: proc}]; ok && d < best {
		best = d
	}
	return best, !math.IsInf(best, 1)
}

// execOp runs the next operation of proc, honoring the fail-stop date or
// the fail-silent outage window.
func (e *engine) execOp(p string) {
	i := e.seqIdx[p]
	inst := e.seq[p][i]
	start, _ := e.nextOpStart(p)
	end := start + e.sp.Exec(inst.slot.Op, p) //ftlint:infwcet-checked inst.slot belongs to a validated schedule: CanRun holds for every committed op slot
	if from, to, ok := e.st.silence(p, e.it); ok {
		if math.IsInf(to, 1) {
			// Permanent crash: anything at or past the crash date — and
			// everything after it on this processor — is lost.
			if start >= from-eps || end > from+eps {
				e.killProc(p)
				return
			}
		} else if start < from && end > from+eps {
			// The operation is in flight when the outage begins: it is
			// lost, and the sequencer resumes after the recovery.
			inst.state = opCancelled
			e.opsCancel++
			e.seqIdx[p] = i + 1
			if to > e.seqReady[p] {
				e.seqReady[p] = to
			}
			return
		}
	}
	inst.state = opDone
	inst.done = end
	e.opsExec++
	e.opDone[opProcKey{op: inst.slot.Op, proc: p}] = end
	e.seqReady[p] = end
	e.seqIdx[p] = i + 1
	e.record(EventOp, inst.slot.Op, p, start, end)
	if end > e.lastActivity {
		e.lastActivity = end
	}
}

// nextQueueHopStart returns the earliest start of the head entry of a link's
// static communication order, skipping entries that will never transmit.
func (e *engine) nextQueueHopStart(link string) (float64, bool) {
	q := e.queues[link]
	i := e.queueIdx[link]
	for ; i < len(q); i++ {
		en := q[i]
		if en.sd.state == sendNever || en.sd.state == sendDone || en.sd.hopDone > en.hop {
			continue // skipped or already executed
		}
		e.queueIdx[link] = i
		ready, ok := e.hopDataReady(en)
		if !ok {
			return 0, false // head blocked: static order stalls the link
		}
		return math.Max(ready, e.linkFree[link]), true
	}
	e.queueIdx[link] = i
	return 0, false
}

// hopDataReady returns when the data for a sender's next hop is available at
// the hop's origin.
func (e *engine) hopDataReady(en *queueEntry) (float64, bool) {
	sd := en.sd
	if en.hop != sd.hopDone {
		return 0, false // an earlier hop of the same transfer is pending
	}
	if en.hop > 0 {
		return sd.hopTime, true
	}
	done, ok := e.opDone[opProcKey{op: sd.srcOp, proc: sd.proc}]
	if !ok {
		return 0, false
	}
	return done, true
}

// execQueueHop executes the head entry of a link's static order.
func (e *engine) execQueueHop(link string) {
	q := e.queues[link]
	en := q[e.queueIdx[link]]
	ready, _ := e.hopDataReady(en)
	e.execHop(en.gr, en.sd, ready)
}

// execHop transmits one hop of a transfer; a forwarding processor dying or
// going silent mid-transfer loses the message.
func (e *engine) execHop(gr *group, sd *sender, ready float64) {
	h := sd.hops[sd.hopDone]
	start := math.Max(ready, e.linkFree[h.link])
	if from, to, ok := e.st.silence(h.from, e.it); ok && !math.IsInf(to, 1) && start >= from-eps && start < to {
		// The sender is inside a bounded outage: its communication unit
		// resumes the pending transfer after the recovery.
		start = math.Max(to, e.linkFree[h.link])
	}
	if from, to, ok := e.st.linkSilence(h.link, e.it); ok && !math.IsInf(to, 1) && start >= from-eps && start < to {
		// The link is inside a bounded outage: the frame waits until the
		// medium carries traffic again.
		start = math.Max(to, e.linkFree[h.link])
	}
	end := start + h.dur
	if e.st.silentDuring(h.from, e.it, start, end) {
		// The sender stops mid-frame: the link is held until the silence
		// begins, the message is lost, and the receivers' timeout machinery
		// takes over.
		if from, _, ok := e.st.silence(h.from, e.it); ok && start < from && from > e.linkFree[h.link] {
			e.linkFree[h.link] = from
		}
		sd.state = sendNever
		e.lost++
		return
	}
	if e.st.linkSilentDuring(h.link, e.it, start, end) {
		// The link goes down mid-frame (or is permanently dead): the frame
		// is lost exactly like a sender silence — the receivers cannot tell
		// the two apart.
		if from, _, ok := e.st.linkSilence(h.link, e.it); ok && start < from && from > e.linkFree[h.link] {
			e.linkFree[h.link] = from
		}
		sd.state = sendNever
		e.lost++
		return
	}
	e.linkFree[h.link] = end
	sd.hopDone++
	sd.hopTime = end
	sd.state = sendActive
	if sd.hopDone < len(sd.hops) {
		return
	}
	// Final hop: the value arrives.
	sd.state = sendDone
	sd.arrival = end
	e.messages++
	e.record(EventComm, gr.edge.String(), h.link, start, end)
	if end > e.lastActivity {
		e.lastActivity = end
	}
	for _, rcv := range gr.receivers(e.a) {
		if e.st.silentAt(rcv, e.it, end) {
			// A receiver silent at delivery time misses the message; there
			// is no buffering in the network interface.
			e.missed++
			continue
		}
		key := edgeProcKey{edge: gr.edge, proc: rcv}
		if cur, ok := e.commAvail[key]; !ok || end < cur {
			e.commAvail[key] = end
		}
	}
	// A message from a processor previously marked faulty proves it is
	// running: the healthy processors scanning the bus clear its fail flag
	// (Section 6.1, Item 3) and re-integrate it.
	if e.st.detected[sd.proc] && !e.st.silentAt(sd.proc, e.it, end) {
		delete(e.st.detected, sd.proc)
	}
}

// nextFailover walks an FT1 failover chain and returns the next passive
// sender ready to transmit: every earlier rank must be resolved (lost, dead,
// or arrived too late) and the accumulated detection deadline expired.
func (e *engine) nextFailover(gr *group) (int, float64, bool) {
	effDeadline := 0.0
	for i, sd := range gr.senders {
		if sd.skipped {
			// Marked faulty in an earlier iteration: the receivers do not
			// wait for this rank (Fig. 10's fail flags), so it contributes
			// no deadline and never satisfies the chain. But a flagged
			// processor that is actually alive (a detection mistake, or an
			// intermittent outage) does not know it is flagged: its sends
			// still happen — active ones through the static link order,
			// passive ones through the failover path below — and
			// re-integrate it on arrival.
			if sd.passive && sd.state == sendUnknown {
				if done, ok := e.opDone[opProcKey{op: sd.srcOp, proc: sd.proc}]; ok {
					start := math.Max(math.Max(done, effDeadline), e.linkFree[sd.hops[0].link])
					return i, start, true
				}
			}
			continue
		}
		switch sd.state {
		case sendDone:
			if sd.arrival <= effDeadline+eps || sd.arrival <= sd.deadline+eps {
				gr.settled = true
				return -1, 0, false // delivered before anyone gave up
			}
			effDeadline = math.Max(effDeadline, sd.deadline)
		case sendNever:
			effDeadline = math.Max(effDeadline, sd.deadline)
		case sendActive, sendUnknown:
			if !sd.passive {
				// The active sender has not transmitted (or not finished)
				// yet. The receivers do not know why: they simply wait
				// until its deadline, so the next rank's failover becomes
				// available then. The chronological action order guarantees
				// that a send able to complete before the failover fires
				// executes first and preempts it (checked again at
				// execution time).
				effDeadline = math.Max(effDeadline, sd.deadline)
				continue
			}
			done, ok := e.opDone[opProcKey{op: sd.srcOp, proc: sd.proc}]
			if !ok {
				return -1, 0, false // backup has not computed the value yet
			}
			start := math.Max(math.Max(done, effDeadline), e.linkFree[sd.hops[0].link])
			return i, start, true
		}
	}
	// Every sender resolved without satisfying the chain and without a
	// pending failover: nothing more can fire.
	for _, sd := range gr.senders {
		if sd.state == sendUnknown || sd.state == sendActive {
			return -1, 0, false
		}
	}
	gr.settled = true
	return -1, 0, false
}

// execFailover performs a backup sender's transfer after marking the
// timed-out predecessors as faulty. If a late message from an earlier rank
// arrived in the meantime, the failover is cancelled (the backup observed
// the value on the bus before transmitting).
func (e *engine) execFailover(gr *group, idx int, start float64) {
	sd := gr.senders[idx]
	for _, prev := range gr.senders[:idx] {
		if prev.state == sendDone && prev.arrival <= start+eps {
			sd.state = sendNever
			return
		}
	}
	e.detectEarlier(gr, idx, start)
	e.failovers++
	e.record(EventFailover, gr.edge.String(), sd.proc, start, start)
	// Passive transfers execute their hops back to back (they are not part
	// of any static order).
	ready := start
	for sd.state != sendDone && sd.state != sendNever { //ftlint:allow-nopoll bounded: each execHop advances the sender one hop along its finite route
		e.execHop(gr, sd, ready)
		ready = sd.hopTime
	}
}

// detectEarlier marks as faulty every earlier-ranked sender of a chain whose
// message has not been observed by the time the failover fires.
func (e *engine) detectEarlier(gr *group, idx int, now float64) {
	for _, sd := range gr.senders[:idx] {
		if sd.skipped || e.st.detected[sd.proc] {
			continue
		}
		if sd.state == sendDone && sd.arrival <= now+eps {
			continue // message observed (possibly late): not marked
		}
		e.st.detected[sd.proc] = true
		e.timeouts++
		if math.IsInf(e.st.deadAt(sd.proc, e.it), 1) {
			// The sender is alive; its message is merely delayed. This is a
			// detection mistake (Section 6.1, Item 3); it will be corrected
			// if the late message is eventually observed on the bus.
			e.falseDet++
		}
	}
}

// finalTimeoutSweep accounts for chains whose every sender failed: the
// receivers still waited for each undetected sender's deadline.
func (e *engine) finalTimeoutSweep() {
	for _, gr := range e.groups {
		if !gr.chain {
			continue
		}
		satisfied, allResolved := false, true
		for _, sd := range gr.senders {
			if sd.state == sendDone {
				satisfied = true
			}
			if sd.state == sendUnknown || sd.state == sendActive {
				allResolved = false
			}
		}
		if satisfied || !allResolved {
			continue
		}
		for _, sd := range gr.senders {
			if sd.skipped || e.st.detected[sd.proc] {
				continue
			}
			if !math.IsInf(e.st.deadAt(sd.proc, e.it), 1) {
				e.st.detected[sd.proc] = true
				e.timeouts++
			}
		}
	}
}

// report assembles the iteration's result.
func (e *engine) report() IterationResult {
	sort.SliceStable(e.events, func(i, j int) bool { return e.events[i].Start < e.events[j].Start })
	ir := IterationResult{
		Trace:           e.events,
		Outputs:         make(map[string]bool),
		MessagesSent:    e.messages,
		TimeoutsFired:   e.timeouts,
		FalseDetections: e.falseDet,
		End:             e.lastActivity,
		Completed:       true,
	}
	outs := e.g.Outputs()
	if len(outs) == 0 {
		// No output extios: fall back to the graph's sinks so delivery is
		// still meaningful for headless workloads.
		outs = e.g.Sinks()
	}
	for _, out := range outs {
		best := math.Inf(1)
		for _, p := range e.s.Procs() {
			if d, ok := e.opDone[opProcKey{op: out, proc: p}]; ok && d < best {
				best = d
			}
		}
		produced := !math.IsInf(best, 1)
		ir.Outputs[out] = produced
		if !produced {
			ir.Completed = false
			continue
		}
		if best > ir.ResponseTime {
			ir.ResponseTime = best
		}
	}
	return ir
}
