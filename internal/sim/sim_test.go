package sim

import (
	"math"
	"testing"

	"ftsched/internal/core"
	"ftsched/internal/paperex"
	"ftsched/internal/sched"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

// schedule runs heuristic h on the paper instance and returns the schedule.
func schedule(t *testing.T, in *paperex.Instance, h core.Heuristic, k int) *sched.Schedule {
	t.Helper()
	r, err := core.Schedule(h, in.Graph, in.Arch, in.Spec, k, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r.Schedule
}

func simulate(t *testing.T, in *paperex.Instance, s *sched.Schedule, sc Scenario, iters int) *Result {
	t.Helper()
	res, err := Simulate(s, in.Graph, in.Arch, in.Spec, sc, Config{Iterations: iters})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFailureFreeBasicMatchesStaticSchedule(t *testing.T) {
	in := paperex.BusInstance()
	s := schedule(t, in, core.Basic, 0)
	res := simulate(t, in, s, Scenario{}, 1)
	ir := res.Iterations[0]
	if !ir.Completed {
		t.Fatalf("failure-free run incomplete: %+v", ir)
	}
	if !almostEq(ir.ResponseTime, s.Makespan()) {
		t.Errorf("simulated response %v != static makespan %v", ir.ResponseTime, s.Makespan())
	}
	if ir.TimeoutsFired != 0 || ir.FalseDetections != 0 {
		t.Errorf("failure-free run fired timeouts: %+v", ir)
	}
	if ir.Transient {
		t.Error("no failure: iteration must not be transient")
	}
}

func TestFailureFreeFT1MatchesStaticSchedule(t *testing.T) {
	in := paperex.BusInstance()
	s := schedule(t, in, core.FT1, 1)
	res := simulate(t, in, s, Scenario{}, 2)
	for _, ir := range res.Iterations {
		if !ir.Completed {
			t.Fatalf("iteration %d incomplete", ir.Index)
		}
		if ir.TimeoutsFired != 0 || ir.FalseDetections != 0 {
			t.Errorf("iteration %d fired timeouts in failure-free run: %+v", ir.Index, ir)
		}
		if !almostEq(ir.End, s.Makespan()) {
			t.Errorf("iteration %d end %v != static makespan %v", ir.Index, ir.End, s.Makespan())
		}
	}
	if ir := res.Iterations[0]; ir.MessagesSent != s.NumActiveComms() {
		t.Errorf("messages = %d, active comms in schedule = %d", ir.MessagesSent, s.NumActiveComms())
	}
}

func TestFailureFreeFT2MatchesStaticSchedule(t *testing.T) {
	in := paperex.TriangleInstance()
	s := schedule(t, in, core.FT2, 1)
	res := simulate(t, in, s, Scenario{}, 1)
	ir := res.Iterations[0]
	if !ir.Completed {
		t.Fatalf("incomplete: %+v", ir)
	}
	if !almostEq(ir.End, s.Makespan()) {
		t.Errorf("end %v != static makespan %v", ir.End, s.Makespan())
	}
	if ir.TimeoutsFired != 0 {
		t.Error("FT2 never uses timeouts")
	}
}

// TestFig18TransientAndPermanent reproduces the paper's Fig. 18: P2 crashes
// during an iteration; the transient iteration pays timeout waits, the
// subsequent iterations recover because the fail flags persist.
func TestFig18TransientAndPermanent(t *testing.T) {
	in := paperex.BusInstance()
	s := schedule(t, in, core.FT1, 1)
	failFree := simulate(t, in, s, Scenario{}, 1).Iterations[0]

	res := simulate(t, in, s, Single("P2", 1, 0), 3)
	normal, transient, perm := res.Iterations[0], res.Iterations[1], res.Iterations[2]

	if !normal.Completed || normal.TimeoutsFired != 0 {
		t.Fatalf("iteration before failure not clean: %+v", normal)
	}
	if !transient.Completed {
		t.Fatalf("transient iteration lost outputs: %+v", transient)
	}
	if !transient.Transient {
		t.Error("iteration 1 should be marked transient")
	}
	if transient.TimeoutsFired == 0 {
		t.Error("transient iteration should fire failover timeouts")
	}
	if transient.ResponseTime <= failFree.ResponseTime {
		t.Errorf("transient response %v should exceed failure-free %v (timeout waits)",
			transient.ResponseTime, failFree.ResponseTime)
	}
	if !perm.Completed {
		t.Fatalf("permanent iteration lost outputs: %+v", perm)
	}
	if perm.TimeoutsFired != 0 {
		t.Errorf("subsequent iteration still fires timeouts (%d): fail flags must persist", perm.TimeoutsFired)
	}
	// The detection waits disappear in subsequent iterations; the response
	// can stay degraded (the backups' placement is what it is) but never
	// worse than the transient one.
	if perm.ResponseTime > transient.ResponseTime+1e-9 {
		t.Errorf("permanent response %v worse than transient %v",
			perm.ResponseTime, transient.ResponseTime)
	}
	if got := res.FailedProcs; len(got) != 1 || got[0] != "P2" {
		t.Errorf("FailedProcs = %v", got)
	}
	if got := res.DetectedProcs; len(got) != 1 || got[0] != "P2" {
		t.Errorf("DetectedProcs = %v", got)
	}
	// Section 6.4's claim: after a failure, the number of inter-processor
	// communications does not increase.
	if perm.MessagesSent > normal.MessagesSent {
		t.Errorf("messages after failure (%d) exceed initial schedule (%d)",
			perm.MessagesSent, normal.MessagesSent)
	}
}

// TestFT1RecoveryAfterDetection pins the strict transient-vs-permanent
// improvement for crashes whose timeout waits sit on the critical path.
func TestFT1RecoveryAfterDetection(t *testing.T) {
	in := paperex.BusInstance()
	s := schedule(t, in, core.FT1, 1)
	for _, p := range []string{"P1", "P3"} {
		res := simulate(t, in, s, Single(p, 1, 0), 3)
		transient, perm := res.Iterations[1], res.Iterations[2]
		if !transient.Completed || !perm.Completed {
			t.Fatalf("%s crash: lost outputs", p)
		}
		if perm.ResponseTime >= transient.ResponseTime {
			t.Errorf("%s crash: permanent response %v should recover below transient %v",
				p, perm.ResponseTime, transient.ResponseTime)
		}
	}
}

// TestFig23FT2Transient reproduces the paper's Fig. 23: with the second
// solution there are no timeouts, so the transient iteration completes
// without detection delays and the discarded comms simply disappear.
func TestFig23FT2Transient(t *testing.T) {
	in := paperex.TriangleInstance()
	s := schedule(t, in, core.FT2, 1)
	failFree := simulate(t, in, s, Scenario{}, 1).Iterations[0]

	// P2 crashes right after executing A (its A replica completes at 3).
	res := simulate(t, in, s, Single("P2", 0, 3.0), 2)
	transient, perm := res.Iterations[0], res.Iterations[1]
	if !transient.Completed {
		t.Fatalf("FT2 transient iteration lost outputs: %+v", transient)
	}
	if transient.TimeoutsFired != 0 || transient.FalseDetections != 0 {
		t.Error("FT2 must not use timeouts")
	}
	if !perm.Completed {
		t.Fatalf("FT2 permanent iteration lost outputs: %+v", perm)
	}
	// Messages drop once the failed processor's sends vanish.
	if perm.MessagesSent >= failFree.MessagesSent {
		t.Errorf("messages with P2 down (%d) should be below failure-free (%d)",
			perm.MessagesSent, failFree.MessagesSent)
	}
}

func TestFT1ToleratesEverySingleFailure(t *testing.T) {
	in := paperex.BusInstance()
	s := schedule(t, in, core.FT1, 1)
	for _, p := range in.Arch.ProcessorNames() {
		for _, at := range []float64{0, 1.0, 2.5, 4.0, 6.0, 8.0} {
			res := simulate(t, in, s, Single(p, 0, at), 2)
			for _, ir := range res.Iterations {
				if !ir.Completed {
					t.Errorf("FT1: failure of %s at %v: iteration %d lost outputs", p, at, ir.Index)
				}
			}
		}
	}
}

func TestFT2ToleratesEverySingleFailure(t *testing.T) {
	in := paperex.TriangleInstance()
	s := schedule(t, in, core.FT2, 1)
	for _, p := range in.Arch.ProcessorNames() {
		for _, at := range []float64{0, 1.0, 2.5, 4.0, 6.0, 8.0} {
			res := simulate(t, in, s, Single(p, 0, at), 2)
			for _, ir := range res.Iterations {
				if !ir.Completed {
					t.Errorf("FT2: failure of %s at %v: iteration %d lost outputs", p, at, ir.Index)
				}
			}
		}
	}
}

func TestBasicIsNotFaultTolerant(t *testing.T) {
	in := paperex.BusInstance()
	s := schedule(t, in, core.Basic, 0)
	// Killing the processor that runs the input extio's single replica at
	// t=0 must lose outputs.
	p := s.MainReplica("I").Proc
	res := simulate(t, in, s, Single(p, 0, 0), 1)
	if res.Iterations[0].Completed {
		t.Error("basic schedule survived a failure it cannot tolerate")
	}
}

// TestFT2SupportsSimultaneousFailures checks Section 7.4's claim: the second
// solution supports several failures arriving in the same iteration (K=2 on
// a 4-processor fully connected architecture, two failures at once).
func TestFT2SupportsSimultaneousFailures(t *testing.T) {
	in := quadInstance(t)
	r, err := core.ScheduleFT2(in.Graph, in.Arch, in.Spec, 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Schedule.Validate(in.Graph, in.Arch, in.Spec); err != nil {
		t.Fatal(err)
	}
	sc := Scenario{Failures: []Failure{
		{Proc: "P1", Iteration: 0, At: 2.0},
		{Proc: "P3", Iteration: 0, At: 2.0},
	}}
	res, err := Simulate(r.Schedule, in.Graph, in.Arch, in.Spec, sc, Config{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, ir := range res.Iterations {
		if !ir.Completed {
			t.Errorf("FT2 K=2: iteration %d lost outputs under two simultaneous failures", ir.Index)
		}
		if ir.TimeoutsFired != 0 {
			t.Error("FT2 must not use timeouts")
		}
	}
}

// TestFT1TimeoutAccumulation checks Section 6.6's observation: with the
// first solution, several failures in one iteration accumulate timeout
// delays.
func TestFT1TimeoutAccumulation(t *testing.T) {
	in := quadInstance(t)
	r, err := core.ScheduleFT1(in.Graph, in.Arch, in.Spec, 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	failFree, err := Simulate(r.Schedule, in.Graph, in.Arch, in.Spec, Scenario{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{Failures: []Failure{
		{Proc: "P1", Iteration: 0, At: 0},
		{Proc: "P2", Iteration: 0, At: 0},
	}}
	res, err := Simulate(r.Schedule, in.Graph, in.Arch, in.Spec, sc, Config{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	ir := res.Iterations[0]
	if !ir.Completed {
		t.Fatalf("FT1 K=2 lost outputs under two failures: %+v", ir)
	}
	if ir.TimeoutsFired < 2 {
		t.Errorf("expected accumulated timeouts, got %d", ir.TimeoutsFired)
	}
	if ir.ResponseTime <= failFree.Iterations[0].ResponseTime {
		t.Errorf("two failures should delay the response: %v vs %v",
			ir.ResponseTime, failFree.Iterations[0].ResponseTime)
	}
}

func TestScenarioValidation(t *testing.T) {
	in := paperex.BusInstance()
	s := schedule(t, in, core.Basic, 0)
	cases := []Scenario{
		{Failures: []Failure{{Proc: "PX", Iteration: 0, At: 0}}},
		{Failures: []Failure{{Proc: "P1", Iteration: -1, At: 0}}},
		{Failures: []Failure{{Proc: "P1", Iteration: 0, At: -1}}},
		{Failures: []Failure{{Proc: "P1", Iteration: 0, At: 0}, {Proc: "P1", Iteration: 1, At: 0}}},
	}
	for i, sc := range cases {
		if _, err := Simulate(s, in.Graph, in.Arch, in.Spec, sc, Config{}); err == nil {
			t.Errorf("case %d: expected scenario validation error", i)
		}
	}
}

func TestDefaultIterations(t *testing.T) {
	in := paperex.BusInstance()
	s := schedule(t, in, core.Basic, 0)
	res, err := Simulate(s, in.Graph, in.Arch, in.Spec, Scenario{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) != 1 {
		t.Errorf("default iterations = %d, want 1", len(res.Iterations))
	}
}

func TestCrashMidOperation(t *testing.T) {
	in := paperex.BusInstance()
	s := schedule(t, in, core.FT1, 1)
	// Find the main replica of A and kill its processor halfway through.
	main := s.MainReplica("A")
	mid := (main.Start + main.End) / 2
	res := simulate(t, in, s, Single(main.Proc, 0, mid), 1)
	ir := res.Iterations[0]
	if !ir.Completed {
		t.Fatalf("mid-operation crash lost outputs: %+v", ir)
	}
	// The killed replica must not have produced a value used downstream:
	// the backup's completion bounds the response.
	if ir.ResponseTime <= 0 {
		t.Error("no response recorded")
	}
}

func TestSingleHelper(t *testing.T) {
	sc := Single("P1", 2, 3.5)
	if len(sc.Failures) != 1 || sc.Failures[0].Proc != "P1" ||
		sc.Failures[0].Iteration != 2 || sc.Failures[0].At != 3.5 {
		t.Errorf("Single = %+v", sc)
	}
}
