package sim

import (
	"math/rand"
	"testing"

	"ftsched/internal/core"
	"ftsched/internal/workload"
)

// TestFalseDetectionDoesNotStarveLaterIterations is a regression test for a
// bug found by the integration matrix: on a point-to-point mesh, a late
// arrival in the transient iteration falsely marks a healthy processor; in
// the next iteration both the dead main and the flagged-but-alive backup of
// a chain were skipped, starving the consumer. A flagged backup that is
// actually alive must still fire its failover send.
func TestFalseDetectionDoesNotStarveLaterIterations(t *testing.T) {
	r := rand.New(rand.NewSource(int64(7 * 5)))
	g, err := workload.ControlLoop(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := workload.FullMesh(4)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := workload.Costs(r, g, a, workload.CostParams{MeanExec: 2, Spread: 0.4, CCR: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.ScheduleFT1(g, a, sp, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := Simulate(res.Schedule, g, a, sp, Single("P4", 0, 0), Config{Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, ir := range sr.Iterations {
		if !ir.Completed {
			t.Errorf("iteration %d lost outputs: %+v", ir.Index, ir.Outputs)
		}
	}
	// The healthy processor falsely marked in the transient iteration is
	// re-integrated once its messages are observed: only the dead one stays.
	if len(sr.DetectedProcs) != 1 || sr.DetectedProcs[0] != "P4" {
		t.Errorf("DetectedProcs = %v, want [P4]", sr.DetectedProcs)
	}
}

// TestFT1MeshSingleFailureSweep extends the coverage to every single
// failure on the same point-to-point instance across multiple iterations.
func TestFT1MeshSingleFailureSweep(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	g, err := workload.ControlLoop(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := workload.FullMesh(4)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := workload.Costs(r, g, a, workload.CostParams{MeanExec: 2, Spread: 0.4, CCR: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.ScheduleFT1(g, a, sp, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	horizon := res.Schedule.Makespan()
	for _, p := range a.ProcessorNames() {
		for _, at := range []float64{0, horizon / 3, 2 * horizon / 3, horizon} {
			sr, err := Simulate(res.Schedule, g, a, sp, Single(p, 0, at), Config{Iterations: 3})
			if err != nil {
				t.Fatal(err)
			}
			for _, ir := range sr.Iterations {
				if !ir.Completed {
					t.Errorf("failure of %s at %.2f: iteration %d incomplete", p, at, ir.Index)
				}
			}
		}
	}
}
