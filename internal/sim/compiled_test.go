package sim_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"ftsched/internal/arch"
	"ftsched/internal/core"
	"ftsched/internal/paperex"
	"ftsched/internal/sim"
)

// assertDifferential runs the scenario through both engines and fails unless
// errors and Results agree exactly (reflect.DeepEqual).
func assertDifferential(t *testing.T, run func(legacy bool) (*sim.Result, error), label string) {
	t.Helper()
	want, wantErr := run(true)
	got, gotErr := run(false)
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("%s: error mismatch: legacy=%v compiled=%v", label, wantErr, gotErr)
	}
	if wantErr != nil {
		if wantErr.Error() != gotErr.Error() {
			t.Fatalf("%s: error text mismatch:\nlegacy:   %v\ncompiled: %v", label, wantErr, gotErr)
		}
		return
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("%s: result mismatch:\nlegacy:   %+v\ncompiled: %+v", label, want, got)
	}
}

// diffCase holds one (instance, heuristic) pair under differential test.
type diffCase struct {
	name string
	in   *paperex.Instance
	h    core.Heuristic
	k    int
}

func diffCases(t *testing.T) []diffCase {
	t.Helper()
	return []diffCase{
		{"bus/basic", paperex.BusInstance(), core.Basic, 0},
		{"bus/ft1", paperex.BusInstance(), core.FT1, 1},
		{"bus/ft1k2", paperex.BusInstance(), core.FT1, 2},
		{"p2p/basic", paperex.TriangleInstance(), core.Basic, 0},
		{"p2p/ft2", paperex.TriangleInstance(), core.FT2, 1},
	}
}

// diffScenarios enumerates the scenario classes the campaign generators
// draw from: failure-free, fail-stop singles, near-simultaneous bursts,
// intermittent outages, link outages, and mixes, plus invalid scenarios
// (shared validation must reject them identically).
func diffScenarios(in *paperex.Instance, horizon float64) []sim.Scenario {
	procs := in.Arch.ProcessorNames()
	links := in.Arch.LinkNames()
	out := []sim.Scenario{{}}
	for _, p := range procs {
		out = append(out,
			sim.Single(p, 0, 0),
			sim.Single(p, 0, horizon*0.4),
			sim.Single(p, 1, horizon*0.8),
			sim.Intermittent(p, 0, horizon*0.3, 0, horizon*0.7),
			sim.Intermittent(p, 0, horizon*0.2, 2, horizon*0.1),
		)
	}
	// Near-simultaneous burst: two failures within 2% of the horizon (the
	// paper's stated FT1 weakness).
	if len(procs) >= 2 {
		out = append(out, sim.Scenario{Failures: []sim.Failure{
			{Proc: procs[0], Iteration: 0, At: horizon * 0.5},
			{Proc: procs[1], Iteration: 0, At: horizon * 0.51},
		}})
		out = append(out, sim.Scenario{Failures: []sim.Failure{
			{Proc: procs[0], Iteration: 0, At: horizon * 0.3},
			{Proc: procs[1], Iteration: 1, At: horizon * 0.6},
		}})
	}
	for _, l := range links {
		out = append(out,
			sim.SingleLink(l, 0, horizon*0.5),
			sim.Scenario{Links: []sim.LinkFailure{{
				Link: l, Iteration: 0, At: horizon * 0.25,
				RecoverIteration: 0, RecoverAt: horizon * 0.75,
			}}},
		)
	}
	if len(procs) >= 1 && len(links) >= 1 {
		out = append(out, sim.Scenario{
			Failures: []sim.Failure{{Proc: procs[len(procs)-1], Iteration: 0, At: horizon * 0.6}},
			Links:    []sim.LinkFailure{{Link: links[0], Iteration: 1, At: horizon * 0.2}},
		})
	}
	// Invalid scenarios: both engines must reject with identical errors.
	out = append(out,
		sim.Single("no-such-proc", 0, 1),
		sim.Single(procs[0], -1, 1),
		sim.Scenario{Failures: []sim.Failure{
			{Proc: procs[0], Iteration: 0, At: 5, RecoverIteration: 0, RecoverAt: 2},
		}},
		sim.Scenario{Failures: []sim.Failure{
			{Proc: procs[0], Iteration: 0, At: 1},
			{Proc: procs[0], Iteration: 1, At: 2},
		}},
		sim.SingleLink("no-such-link", 0, 1),
		sim.Scenario{Links: []sim.LinkFailure{
			{Link: links[0], Iteration: 0, At: 1},
			{Link: links[0], Iteration: 0, At: 2},
		}},
	)
	return out
}

// TestSimDifferentialMatrix pins the compiled engine to the legacy engine
// over heuristics × scenario classes, with tracing and a deadline so every
// Result field is exercised.
func TestSimDifferentialMatrix(t *testing.T) {
	for _, tc := range diffCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			r, err := core.Schedule(tc.h, tc.in.Graph, tc.in.Arch, tc.in.Spec, tc.k, core.Options{AllowDegraded: true})
			if err != nil {
				t.Fatal(err)
			}
			s := r.Schedule
			horizon := s.Makespan()
			for si, sc := range diffScenarios(tc.in, horizon) {
				for _, trace := range []bool{false, true} {
					cfg := sim.Config{Iterations: 3, Trace: trace, Deadline: horizon * 1.5}
					label := fmt.Sprintf("scenario %d trace=%v", si, trace)
					assertDifferential(t, func(legacy bool) (*sim.Result, error) {
						if legacy {
							return sim.SimulateLegacy(s, tc.in.Graph, tc.in.Arch, tc.in.Spec, sc, cfg)
						}
						return sim.Simulate(s, tc.in.Graph, tc.in.Arch, tc.in.Spec, sc, cfg)
					}, label)
				}
			}
		})
	}
}

// TestSimDifferentialRandom drives both engines over random problems and
// random scenarios (including intermittent and link failures the sweep
// helpers do not generate).
func TestSimDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		nOps := 4 + rng.Intn(8)
		nProcs := 2 + rng.Intn(3)
		bus := rng.Intn(2) == 0
		g, a, sp := randomProblem(rng, nOps, nProcs, bus)
		h := []core.Heuristic{core.Basic, core.FT1, core.FT2}[trial%3]
		k := 0
		if h != core.Basic {
			k = 1
		}
		r, err := core.Schedule(h, g, a, sp, k, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		s := r.Schedule
		horizon := s.Makespan()
		sc := randomScenario(rng, a, horizon)
		cfg := sim.Config{Iterations: 1 + rng.Intn(4), Trace: trial%2 == 0}
		label := fmt.Sprintf("trial %d (%d ops, %d procs, bus=%v, h=%v)", trial, nOps, nProcs, bus, h)
		assertDifferential(t, func(legacy bool) (*sim.Result, error) {
			if legacy {
				return sim.SimulateLegacy(s, g, a, sp, sc, cfg)
			}
			return sim.Simulate(s, g, a, sp, sc, cfg)
		}, label)
	}
}

// randomScenario draws a mixed random scenario: fail-stop and intermittent
// processor failures plus occasional link outages.
func randomScenario(r *rand.Rand, a *arch.Architecture, horizon float64) sim.Scenario {
	var sc sim.Scenario
	procs := a.ProcessorNames()
	links := a.LinkNames()
	for _, i := range r.Perm(len(procs))[:r.Intn(len(procs)+1)] {
		f := sim.Failure{Proc: procs[i], Iteration: r.Intn(3), At: r.Float64() * horizon}
		if r.Intn(3) == 0 {
			f.RecoverIteration = f.Iteration + r.Intn(2)
			f.RecoverAt = f.At + 0.01 + r.Float64()*horizon
			if f.RecoverIteration > f.Iteration {
				f.RecoverAt = r.Float64() * horizon
			}
		}
		sc.Failures = append(sc.Failures, f)
	}
	if len(links) > 0 && r.Intn(2) == 0 {
		l := links[r.Intn(len(links))]
		lf := sim.LinkFailure{Link: l, Iteration: r.Intn(3), At: r.Float64() * horizon}
		if r.Intn(2) == 0 {
			lf.RecoverIteration = lf.Iteration
			lf.RecoverAt = lf.At + 0.01 + r.Float64()*horizon*0.5
		}
		sc.Links = append(sc.Links, lf)
	}
	return sc
}

// TestSimCompiledModelSharedAcrossWorkers runs the same scenario batch on
// 1, 4, and 8 goroutines sharing one compiled Model (a Runner each) and
// pins every Result to the legacy engine — the campaign's sharding shape.
func TestSimCompiledModelSharedAcrossWorkers(t *testing.T) {
	in := paperex.BusInstance()
	r, err := core.Schedule(core.FT1, in.Graph, in.Arch, in.Spec, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := r.Schedule
	horizon := s.Makespan()
	m, err := sim.Compile(s, in.Graph, in.Arch, in.Spec)
	if err != nil {
		t.Fatal(err)
	}
	scenarios := diffScenarios(in, horizon)
	// Keep only the valid ones: worker goroutines assert DeepEqual results.
	valid := scenarios[:0]
	for _, sc := range scenarios {
		if m.Validate(sc) == nil {
			valid = append(valid, sc)
		}
	}
	cfg := sim.Config{Iterations: 2, Deadline: horizon * 1.2}
	want := make([]*sim.Result, len(valid))
	for i, sc := range valid {
		res, err := sim.SimulateLegacy(s, in.Graph, in.Arch, in.Spec, sc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	for _, workers := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			got := make([]*sim.Result, len(valid))
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					runner := m.NewRunner()
					for i := w; i < len(valid); i += workers {
						res, err := runner.Run(valid[i], cfg)
						if err == nil {
							got[i] = res
						}
					}
				}(w)
			}
			wg.Wait()
			for i := range valid {
				if !reflect.DeepEqual(want[i], got[i]) {
					t.Fatalf("scenario %d: shared-model result diverges from legacy:\nlegacy:   %+v\ncompiled: %+v", i, want[i], got[i])
				}
			}
		})
	}
}

// TestRunStatsMatchesFullRun pins the lean statistics path to the full
// fidelity path.
func TestRunStatsMatchesFullRun(t *testing.T) {
	in := paperex.BusInstance()
	r, err := core.Schedule(core.FT1, in.Graph, in.Arch, in.Spec, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := r.Schedule
	horizon := s.Makespan()
	m, err := sim.Compile(s, in.Graph, in.Arch, in.Spec)
	if err != nil {
		t.Fatal(err)
	}
	runner := m.NewRunner()
	for si, sc := range diffScenarios(in, horizon) {
		if m.Validate(sc) != nil {
			continue
		}
		cfg := sim.Config{Iterations: 3, Deadline: horizon * 1.1}
		full, err := m.Simulate(sc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		st := runner.RunStats(sc, sim.RunConfig{Iterations: 3, Deadline: horizon * 1.1})
		var (
			completed, misses, msgs, timeouts, falseDet int
			worst, sum                                  float64
		)
		for _, ir := range full.Iterations {
			if ir.Completed {
				completed++
			}
			if !ir.DeadlineMet {
				misses++
			}
			msgs += ir.MessagesSent
			timeouts += ir.TimeoutsFired
			falseDet += ir.FalseDetections
			sum += ir.ResponseTime
			if ir.ResponseTime > worst {
				worst = ir.ResponseTime
			}
		}
		if st.Iterations != len(full.Iterations) || st.Completed != completed ||
			st.DeadlineMisses != misses || st.Messages != msgs ||
			st.Timeouts != timeouts || st.FalseDetections != falseDet ||
			st.WorstResponse != worst || st.SumResponse != sum {
			t.Fatalf("scenario %d: RunStats diverges from full run:\nstats: %+v\nfull:  completed=%d misses=%d msgs=%d timeouts=%d falseDet=%d worst=%v sum=%v",
				si, st, completed, misses, msgs, timeouts, falseDet, worst, sum)
		}
	}
}

// FuzzSimDifferential holds the compiled and legacy engines together under
// fuzzed problems and scenarios (the scenario bytes drive failure targets,
// dates, recovery points, and link outages; invalid combinations must be
// rejected with identical errors).
func FuzzSimDifferential(f *testing.F) {
	f.Add(int64(1), uint8(6), uint8(3), true, uint8(1), []byte{0, 0, 10, 0, 0})
	f.Add(int64(2), uint8(8), uint8(2), false, uint8(2), []byte{1, 1, 200, 1, 120, 255, 0, 40, 0, 0})
	f.Add(int64(3), uint8(4), uint8(4), true, uint8(0), []byte{})
	f.Add(int64(4), uint8(10), uint8(3), true, uint8(1), []byte{0, 0, 3, 0, 9, 1, 0, 5, 0, 0, 2, 1, 7, 0, 0})
	f.Fuzz(func(t *testing.T, seed int64, szOps, szProcs uint8, bus bool, hsel uint8, scBytes []byte) {
		rng := rand.New(rand.NewSource(seed))
		nOps := int(szOps%10) + 2
		nProcs := int(szProcs%4) + 2
		g, a, sp := randomProblem(rng, nOps, nProcs, bus)
		h := []core.Heuristic{core.Basic, core.FT1, core.FT2}[int(hsel)%3]
		k := 0
		if h != core.Basic {
			k = 1
		}
		r, err := core.Schedule(h, g, a, sp, k, core.Options{})
		if err != nil {
			t.Skip() // infeasible random problem
		}
		s := r.Schedule
		sc := scenarioFromBytes(scBytes, a, s.Makespan())
		cfg := sim.Config{Iterations: 2, Trace: len(scBytes)%2 == 0}
		want, wantErr := sim.SimulateLegacy(s, g, a, sp, sc, cfg)
		got, gotErr := sim.Simulate(s, g, a, sp, sc, cfg)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error mismatch: legacy=%v compiled=%v", wantErr, gotErr)
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Fatalf("error text mismatch:\nlegacy:   %v\ncompiled: %v", wantErr, gotErr)
			}
			return
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("result mismatch:\nlegacy:   %+v\ncompiled: %+v", want, got)
		}
	})
}

// scenarioFromBytes decodes a fuzzed scenario: groups of 5 bytes yield one
// failure (target, iteration, date, recovery iteration, recovery date);
// target 255 selects a link, and targets past the processor count produce
// invalid scenarios on purpose.
func scenarioFromBytes(b []byte, a *arch.Architecture, horizon float64) sim.Scenario {
	procs := a.ProcessorNames()
	links := a.LinkNames()
	var sc sim.Scenario
	for i := 0; i+5 <= len(b) && i < 4*5; i += 5 {
		target, iter := b[i], int(b[i+1]%3)
		at := float64(b[i+2]) / 255 * horizon
		recIter, recAt := int(b[i+3]%4), float64(b[i+4])/255*horizon
		if target == 255 && len(links) > 0 {
			lf := sim.LinkFailure{Link: links[int(b[i+1])%len(links)], Iteration: iter, At: at}
			if recAt > 0 {
				lf.RecoverIteration, lf.RecoverAt = recIter, recAt
			}
			sc.Links = append(sc.Links, lf)
			continue
		}
		proc := fmt.Sprintf("P%d", int(target)%(len(procs)+2)) // may be unknown
		pf := sim.Failure{Proc: proc, Iteration: iter, At: at}
		if recAt > 0 {
			pf.RecoverIteration, pf.RecoverAt = recIter, recAt
		}
		sc.Failures = append(sc.Failures, pf)
	}
	return sc
}
