package sim

import (
	"testing"

	"ftsched/internal/arch"
	"ftsched/internal/core"
	"ftsched/internal/graph"
	"ftsched/internal/spec"
)

// chainInstance builds a pipeline on the Fig. 8 chain architecture
// (P1 - P2 - P3), every op allowed everywhere with uniform costs.
func chainInstance(t *testing.T) (*graph.Graph, *arch.Architecture, *spec.Spec) {
	t.Helper()
	g := graph.New("pipe")
	for _, n := range []string{"A", "B", "C"} {
		if err := g.AddComp(n); err != nil {
			t.Fatal(err)
		}
	}
	_ = g.Connect("A", "B")
	_ = g.Connect("B", "C")
	a := arch.New("chain3")
	for _, p := range []string{"P1", "P2", "P3"} {
		_ = a.AddProcessor(p)
	}
	_ = a.AddLink("L12", "P1", "P2")
	_ = a.AddLink("L23", "P2", "P3")
	sp := spec.New()
	for _, op := range g.OpNames() {
		for _, p := range a.ProcessorNames() {
			_ = sp.SetExec(op, p, 1)
		}
	}
	for _, e := range g.Edges() {
		_ = sp.SetCommUniform(a, e.Key(), 0.5)
	}
	return g, a, sp
}

func TestMultiHopFailureFreeMatchesStatic(t *testing.T) {
	g, a, sp := chainInstance(t)
	for _, h := range []core.Heuristic{core.Basic, core.FT1, core.FT2} {
		r, err := core.Schedule(h, g, a, sp, 1, core.Options{})
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		res, err := Simulate(r.Schedule, g, a, sp, Scenario{}, Config{})
		if err != nil {
			t.Fatal(err)
		}
		ir := res.Iterations[0]
		if !ir.Completed {
			t.Fatalf("%v: incomplete", h)
		}
		if diff := ir.End - r.Schedule.Makespan(); diff > 1e-6 || diff < -1e-6 {
			t.Errorf("%v: simulated end %v != static %v", h, ir.End, r.Schedule.Makespan())
		}
	}
}

// TestChainPartitionLosesOutputs documents the network-partition limit: the
// paper tolerates only processor failures and assumes the network stays
// usable (Section 5.5 — link failures are out of scope). On a chain, the
// middle processor's crash partitions P1 from P3, so even an FT2 K=1
// schedule can lose outputs whose producers and consumers end up on
// opposite sides.
func TestChainPartitionLosesOutputs(t *testing.T) {
	g, a, sp := chainInstance(t)
	// Force A to P1 and C to P3 so the dataflow must cross P2.
	_ = sp.SetExec("A", "P2", spec.Inf)
	_ = sp.SetExec("A", "P3", spec.Inf)
	_ = sp.SetExec("C", "P1", spec.Inf)
	_ = sp.SetExec("C", "P2", spec.Inf)
	r, err := core.ScheduleFT2(g, a, sp, 1, core.Options{AllowDegraded: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(r.Schedule, g, a, sp, Single("P2", 0, 0), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations[0].Completed {
		t.Error("a partitioning failure should lose outputs (documented limit)")
	}
}

// TestChainIntermediateFailureWithRedundantPlacement shows the flip side:
// when the constraints let the heuristic place replicas on both sides of
// the would-be partition, single failures of the middle processor are
// tolerated if the graph's data can flow on one side.
func TestChainIntermediateFailureToleratedWhenLocal(t *testing.T) {
	g, a, sp := chainInstance(t)
	r, err := core.ScheduleFT2(g, a, sp, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Crash the processor that holds neither A's main nor the schedule's
	// critical chain: sweep all three and require that at least the
	// non-partitioning crashes still deliver.
	tolerated := 0
	for _, p := range a.ProcessorNames() {
		res, err := Simulate(r.Schedule, g, a, sp, Single(p, 0, 0), Config{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Iterations[0].Completed {
			tolerated++
		}
	}
	if tolerated < 2 {
		t.Errorf("only %d of 3 single failures tolerated on the chain", tolerated)
	}
}
