package sim

import "math"

// This file is the compiled engine: a statement-for-statement mirror of the
// legacy engine (engine.go) over the Model's int32-indexed arrays instead of
// string-keyed maps. Every scan order, epsilon comparison, and math.Max is
// kept identical so the two paths produce reflect.DeepEqual Results — the
// differential and fuzz tests (compiled_test.go) hold them together. When
// changing simulation semantics, change BOTH engines.

// silence returns the window [from, to) of iteration-local time during
// which processor p is silent in the current iteration.
func (r *Runner) silence(p int32) (from, to float64, ok bool) {
	if !r.hasFail[p] {
		return 0, 0, false
	}
	f := &r.fail[p]
	return silenceWindow(f.Iteration, f.At, f.RecoverIteration, f.RecoverAt, f.Permanent(), r.it)
}

// linkSilence is silence for link outages.
func (r *Runner) linkSilence(l int32) (from, to float64, ok bool) {
	if !r.hasLinkFail[l] {
		return 0, 0, false
	}
	f := &r.linkFail[l]
	return silenceWindow(f.Iteration, f.At, f.RecoverIteration, f.RecoverAt, f.Permanent(), r.it)
}

// deadAt is the local date at which p stops for good during the current
// iteration (+Inf while alive or merely intermittent).
func (r *Runner) deadAt(p int32) float64 {
	if !r.hasFail[p] {
		return math.Inf(1)
	}
	f := &r.fail[p]
	if !f.Permanent() {
		return math.Inf(1)
	}
	if f.Iteration < r.it {
		return 0
	}
	if f.Iteration == r.it {
		return f.At
	}
	return math.Inf(1)
}

// silentDuring reports whether p is silent at any point of [from, to).
func (r *Runner) silentDuring(p int32, from, to float64) bool {
	f, t, ok := r.silence(p)
	if !ok {
		return false
	}
	return from < t && f < to
}

// linkSilentDuring reports whether l is silent at any point of [from, to).
func (r *Runner) linkSilentDuring(l int32, from, to float64) bool {
	f, t, ok := r.linkSilence(l)
	if !ok {
		return false
	}
	return from < t && f < to
}

// silentAt reports whether p is silent at instant t.
func (r *Runner) silentAt(p int32, t float64) bool {
	f, to, ok := r.silence(p)
	return ok && t >= f-1e-9 && t < to
}

// record appends a trace event when tracing is enabled.
func (r *Runner) record(kind EventKind, what, where string, start, end float64) {
	if !r.trace {
		return
	}
	r.events = append(r.events, Event{Kind: kind, What: what, Where: where, Start: start, End: end})
}

// runCompiled executes one iteration of the reactive loop to quiescence.
// This is the per-scenario hot path: it must not allocate (hotalloc root).
func (r *Runner) runCompiled(it int) {
	r.resetIteration(it)
	for { //ftlint:allow-nopoll bounded: every action consumes one pending op, hop, or failover of the finite schedule; Run and the campaign shards poll Cancel between scenarios
		r.resolve()
		kind, ref, idx, start := r.nextAction()
		if kind == actNone {
			if r.unblock() {
				continue
			}
			break
		}
		switch kind {
		case actOp:
			r.execOp(ref)
		case actQueueHop:
			r.execQueueHop(ref)
		case actFailover:
			r.execFailover(ref, idx, start)
		}
	}
	r.finalTimeoutSweep()
}

// resolve performs time-free state transitions until a fixed point.
func (r *Runner) resolve() {
	if !r.resolveDirty {
		return
	}
	r.resolveDirty = false
	m := r.m
	for changed := true; changed; { //ftlint:allow-nopoll bounded: each round that reports a change kills a processor or resolves a sender, both finite and monotone
		changed = false
		for _, p := range m.schedProcs {
			if r.seqDead[p] {
				continue
			}
			if from, to, ok := r.silence(p); ok && from == 0 && math.IsInf(to, 1) {
				r.killProc(p)
				changed = true
			}
		}
		for si := range m.senders {
			if r.sendState[si] != sendUnknown {
				continue
			}
			sd := &m.senders[si]
			if sd.srcInst < 0 || r.instState[sd.srcInst] == opCancelled {
				r.sendState[si] = sendNever
				changed = true
			}
		}
	}
}

// killProc cancels every remaining operation of a dead processor.
func (r *Runner) killProc(p int32) {
	hi := r.m.seqStart[p+1]
	for i := r.seqIdx[p]; i < hi; i++ {
		if r.instState[i] == opPending {
			r.instState[i] = opCancelled
			r.opsCancel++
		}
	}
	r.seqIdx[p] = hi
	r.seqDead[p] = true
	r.resolveDirty = true
}

// nextAction scans processors, link queues, and failover chains for the
// executable action with the earliest start date. Scan orders match the
// legacy engine: processors and links ascending by sorted name (= ascending
// ID), groups in delivery order.
func (r *Runner) nextAction() (kind actionKind, ref int32, idx int32, bestStart float64) {
	m := r.m
	kind, ref, idx = actNone, -1, -1
	bestStart = math.Inf(1)
	for _, p := range m.schedProcs {
		if start, ok := r.nextOpStart(p); ok && start < bestStart-eps {
			kind, bestStart, ref, idx = actOp, start, p, -1
		}
	}
	for l := int32(0); l < int32(len(m.links)); l++ {
		if start, ok := r.nextQueueHopStart(l); ok && start < bestStart-eps {
			kind, bestStart, ref, idx = actQueueHop, start, l, -1
		}
	}
	for gi := range m.groups {
		gr := &m.groups[gi]
		if !gr.chain || r.grSettled[gi] {
			continue
		}
		if si, start, ok := r.nextFailover(int32(gi)); ok && start < bestStart-eps {
			kind, bestStart, ref, idx = actFailover, start, int32(gi), si
		}
	}
	return kind, ref, idx, bestStart
}

// nextOpStart returns the earliest start of p's next pending operation, if
// its inputs are available.
func (r *Runner) nextOpStart(p int32) (float64, bool) {
	m := r.m
	i := r.seqIdx[p]
	if i >= m.seqStart[p+1] || r.seqDead[p] {
		return 0, false
	}
	start := r.seqReady[p]
	for k := m.predStart[i]; k < m.predStart[i+1]; k++ {
		at, ok := r.inputAvail(m.predEdge[k], m.predOp[k], p)
		if !ok {
			return 0, false
		}
		if at > start {
			start = at
		}
	}
	if from, to, ok := r.silence(p); ok && !math.IsInf(to, 1) && start >= from-eps && start < to {
		start = to
	}
	return start, true
}

// inputAvail returns the earliest date edge's value is available on proc:
// the local production of the source op or the earliest reception.
func (r *Runner) inputAvail(edge, srcOp, proc int32) (float64, bool) {
	nP := int32(len(r.m.procs))
	best := math.Inf(1)
	if d := r.opDone[srcOp*nP+proc]; !math.IsNaN(d) {
		best = d
	}
	if d := r.commAvail[edge*nP+proc]; !math.IsNaN(d) && d < best {
		best = d
	}
	return best, !math.IsInf(best, 1)
}

// execOp runs the next operation of p, honoring the fail-stop date or the
// fail-silent outage window.
func (r *Runner) execOp(p int32) {
	m := r.m
	i := r.seqIdx[p]
	start, _ := r.nextOpStart(p)
	end := start + m.instExec[i]
	if from, to, ok := r.silence(p); ok {
		if math.IsInf(to, 1) {
			if start >= from-eps || end > from+eps {
				r.killProc(p)
				return
			}
		} else if start < from && end > from+eps {
			r.instState[i] = opCancelled
			r.opsCancel++
			r.seqIdx[p] = i + 1
			if to > r.seqReady[p] {
				r.seqReady[p] = to
			}
			return
		}
	}
	r.instState[i] = opDone
	r.opsExec++
	r.opDone[m.instOp[i]*int32(len(m.procs))+p] = end
	r.seqReady[p] = end
	r.seqIdx[p] = i + 1
	r.record(EventOp, m.ops[m.instOp[i]], m.procs[p], start, end)
	if end > r.lastActivity {
		r.lastActivity = end
	}
}

// nextQueueHopStart returns the earliest start of the head entry of link
// l's static communication order, skipping entries that never transmit.
func (r *Runner) nextQueueHopStart(l int32) (float64, bool) {
	m := r.m
	hi := m.queueStart[l+1]
	i := r.queueIdx[l]
	for ; i < hi; i++ {
		en := &m.queueEntries[i]
		st := r.sendState[en.sender]
		if st == sendNever || st == sendDone || r.sendHopDone[en.sender] > en.hop {
			continue
		}
		r.queueIdx[l] = i
		ready, ok := r.hopDataReady(en)
		if !ok {
			return 0, false
		}
		return math.Max(ready, r.linkFree[l]), true
	}
	r.queueIdx[l] = i
	return 0, false
}

// hopDataReady returns when the data for a sender's next hop is available
// at the hop's origin.
func (r *Runner) hopDataReady(en *mQueueEntry) (float64, bool) {
	if en.hop != r.sendHopDone[en.sender] {
		return 0, false
	}
	if en.hop > 0 {
		return r.sendHopTime[en.sender], true
	}
	sd := &r.m.senders[en.sender]
	d := r.opDone[sd.srcOp*int32(len(r.m.procs))+sd.proc]
	if math.IsNaN(d) {
		return 0, false
	}
	return d, true
}

// execQueueHop executes the head entry of link l's static order.
func (r *Runner) execQueueHop(l int32) {
	en := &r.m.queueEntries[r.queueIdx[l]]
	ready, _ := r.hopDataReady(en)
	r.execHop(en.group, en.sender, ready)
}

// execHop transmits one hop of a transfer; a forwarding processor or the
// link itself dying mid-transfer loses the message.
func (r *Runner) execHop(gi, si int32, ready float64) {
	m := r.m
	sd := &m.senders[si]
	h := &m.hops[sd.hopLo+r.sendHopDone[si]]
	start := math.Max(ready, r.linkFree[h.link])
	if from, to, ok := r.silence(h.from); ok && !math.IsInf(to, 1) && start >= from-eps && start < to {
		start = math.Max(to, r.linkFree[h.link])
	}
	if from, to, ok := r.linkSilence(h.link); ok && !math.IsInf(to, 1) && start >= from-eps && start < to {
		start = math.Max(to, r.linkFree[h.link])
	}
	end := start + h.dur
	if r.silentDuring(h.from, start, end) {
		if from, _, ok := r.silence(h.from); ok && start < from && from > r.linkFree[h.link] {
			r.linkFree[h.link] = from
		}
		r.sendState[si] = sendNever
		r.lost++
		return
	}
	if r.linkSilentDuring(h.link, start, end) {
		if from, _, ok := r.linkSilence(h.link); ok && start < from && from > r.linkFree[h.link] {
			r.linkFree[h.link] = from
		}
		r.sendState[si] = sendNever
		r.lost++
		return
	}
	r.linkFree[h.link] = end
	r.sendHopDone[si]++
	r.sendHopTime[si] = end
	r.sendState[si] = sendActive
	if sd.hopLo+r.sendHopDone[si] < sd.hopHi {
		return
	}
	// Final hop: the value arrives.
	r.sendState[si] = sendDone
	r.sendArrival[si] = end
	r.messages++
	gr := &m.groups[gi]
	r.record(EventComm, m.edgeStr[gr.edge], m.links[h.link], start, end)
	if end > r.lastActivity {
		r.lastActivity = end
	}
	nP := int32(len(m.procs))
	for _, rcv := range m.receivers[gr.rcvLo:gr.rcvHi] {
		if r.silentAt(rcv, end) {
			r.missed++
			continue
		}
		k := gr.edge*nP + rcv
		if cur := r.commAvail[k]; math.IsNaN(cur) || end < cur {
			r.commAvail[k] = end
		}
	}
	if r.detected[sd.proc] && !r.silentAt(sd.proc, end) {
		r.detected[sd.proc] = false
	}
}

// nextFailover walks an FT1 failover chain and returns the next passive
// sender ready to transmit (as an absolute sender index).
func (r *Runner) nextFailover(gi int32) (int32, float64, bool) {
	m := r.m
	gr := &m.groups[gi]
	effDeadline := 0.0
	for si := gr.sendLo; si < gr.sendHi; si++ {
		sd := &m.senders[si]
		if r.sendSkipped[si] {
			if sd.passive && r.sendState[si] == sendUnknown {
				if d := r.opDone[sd.srcOp*int32(len(m.procs))+sd.proc]; !math.IsNaN(d) {
					start := math.Max(math.Max(d, effDeadline), r.linkFree[m.hops[sd.hopLo].link])
					return si, start, true
				}
			}
			continue
		}
		switch r.sendState[si] {
		case sendDone:
			if r.sendArrival[si] <= effDeadline+eps || r.sendArrival[si] <= sd.deadline+eps {
				r.grSettled[gi] = true
				return -1, 0, false
			}
			effDeadline = math.Max(effDeadline, sd.deadline)
		case sendNever:
			effDeadline = math.Max(effDeadline, sd.deadline)
		case sendActive, sendUnknown:
			if !sd.passive {
				effDeadline = math.Max(effDeadline, sd.deadline)
				continue
			}
			d := r.opDone[sd.srcOp*int32(len(m.procs))+sd.proc]
			if math.IsNaN(d) {
				return -1, 0, false
			}
			start := math.Max(math.Max(d, effDeadline), r.linkFree[m.hops[sd.hopLo].link])
			return si, start, true
		}
	}
	for si := gr.sendLo; si < gr.sendHi; si++ {
		if r.sendState[si] == sendUnknown || r.sendState[si] == sendActive {
			return -1, 0, false
		}
	}
	r.grSettled[gi] = true
	return -1, 0, false
}

// execFailover performs a backup sender's transfer after marking the
// timed-out predecessors as faulty.
func (r *Runner) execFailover(gi, si int32, start float64) {
	m := r.m
	gr := &m.groups[gi]
	for p := gr.sendLo; p < si; p++ {
		if r.sendState[p] == sendDone && r.sendArrival[p] <= start+eps {
			r.sendState[si] = sendNever
			return
		}
	}
	r.detectEarlier(gi, si, start)
	r.failovers++
	r.record(EventFailover, m.edgeStr[gr.edge], m.procs[m.senders[si].proc], start, start)
	ready := start
	for r.sendState[si] != sendDone && r.sendState[si] != sendNever { //ftlint:allow-nopoll bounded: each execHop advances the sender one hop along its finite route
		r.execHop(gi, si, ready)
		ready = r.sendHopTime[si]
	}
}

// detectEarlier marks as faulty every earlier-ranked sender of a chain
// whose message has not been observed by the time the failover fires.
func (r *Runner) detectEarlier(gi, si int32, now float64) {
	m := r.m
	gr := &m.groups[gi]
	for p := gr.sendLo; p < si; p++ {
		sd := &m.senders[p]
		if r.sendSkipped[p] || r.detected[sd.proc] {
			continue
		}
		if r.sendState[p] == sendDone && r.sendArrival[p] <= now+eps {
			continue
		}
		r.detected[sd.proc] = true
		r.timeouts++
		if math.IsInf(r.deadAt(sd.proc), 1) {
			r.falseDet++
		}
	}
}

// unblock runs at quiescence (see the legacy engine's doc comment for the
// two causes). Reports whether progress was made.
func (r *Runner) unblock() bool {
	m := r.m
	if gi, si, ready, ok := r.nextSkipHop(); ok {
		r.execHop(gi, si, ready)
		return true
	}
	progress := false
	for _, p := range m.schedProcs {
		if r.seqDead[p] || r.seqIdx[p] >= m.seqStart[p+1] {
			continue
		}
		if _, to, ok := r.silence(p); ok && math.IsInf(to, 1) {
			r.killProc(p)
			progress = true
		}
	}
	for si := range m.senders {
		if r.sendState[si] != sendUnknown {
			continue
		}
		sd := &m.senders[si]
		if sd.srcInst >= 0 && r.instState[sd.srcInst] == opPending {
			r.sendState[si] = sendNever
			progress = true
		}
	}
	return progress
}

// nextSkipHop scans every link's static order beyond its blocked head for
// the earliest-queued executable entry, returning the one with the earliest
// possible start across links (scanned in ascending link ID = sorted name,
// like the legacy engine).
func (r *Runner) nextSkipHop() (gi, si int32, ready float64, ok bool) {
	m := r.m
	bestStart := math.Inf(1)
	gi, si = -1, -1
	for l := int32(0); l < int32(len(m.links)); l++ {
		hi := m.queueStart[l+1]
		for i := r.queueIdx[l]; i < hi; i++ {
			en := &m.queueEntries[i]
			st := r.sendState[en.sender]
			if st == sendNever || st == sendDone || r.sendHopDone[en.sender] > en.hop {
				continue
			}
			rdy, dataOK := r.hopDataReady(en)
			if !dataOK {
				continue // blocked entry: look further down the order
			}
			start := math.Max(rdy, r.linkFree[l])
			if start < bestStart-eps {
				gi, si, ready, bestStart = en.group, en.sender, rdy, start
			}
			break // only the earliest-queued ready entry per link
		}
	}
	return gi, si, ready, gi >= 0
}

// finalTimeoutSweep accounts for chains whose every sender failed: the
// receivers still waited for each undetected sender's deadline.
func (r *Runner) finalTimeoutSweep() {
	m := r.m
	for gi := range m.groups {
		gr := &m.groups[gi]
		if !gr.chain {
			continue
		}
		satisfied, allResolved := false, true
		for si := gr.sendLo; si < gr.sendHi; si++ {
			if r.sendState[si] == sendDone {
				satisfied = true
			}
			if r.sendState[si] == sendUnknown || r.sendState[si] == sendActive {
				allResolved = false
			}
		}
		if satisfied || !allResolved {
			continue
		}
		for si := gr.sendLo; si < gr.sendHi; si++ {
			sd := &m.senders[si]
			if r.sendSkipped[si] || r.detected[sd.proc] {
				continue
			}
			if !math.IsInf(r.deadAt(sd.proc), 1) {
				r.detected[sd.proc] = true
				r.timeouts++
			}
		}
	}
}
