package sim

import (
	"testing"

	"ftsched/internal/core"
	"ftsched/internal/paperex"
)

func TestIntermittentValidation(t *testing.T) {
	in := paperex.BusInstance()
	s := schedule(t, in, core.FT1, 1)
	bad := []Scenario{
		// Recovery before the failure.
		Intermittent("P2", 1, 3, 1, 2),
		Intermittent("P2", 2, 0, 1, 5),
		// Zero-length outage.
		Intermittent("P2", 1, 3, 1, 3),
	}
	for i, sc := range bad {
		if _, err := Simulate(s, in.Graph, in.Arch, in.Spec, sc, Config{}); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestPermanentHelper(t *testing.T) {
	if !(Failure{Proc: "P"}).Permanent() {
		t.Error("zero recovery fields must mean permanent")
	}
	if (Failure{Proc: "P", RecoverAt: 2}).Permanent() {
		t.Error("recovery date set must mean intermittent")
	}
	if (Failure{Proc: "P", RecoverIteration: 1}).Permanent() {
		t.Error("recovery iteration set must mean intermittent")
	}
}

// TestIntermittentFT1Reintegration exercises the scheme of Section 6.1,
// Item 3: a processor silent for part of one iteration is marked faulty by
// the timeout machinery, but on a bus its later messages are observed and
// its fail flag is cleared, so subsequent iterations run exactly as before
// the outage.
func TestIntermittentFT1Reintegration(t *testing.T) {
	in := paperex.BusInstance()
	s := schedule(t, in, core.FT1, 1)
	free := simulate(t, in, s, Scenario{}, 1).Iterations[0]

	// P2 is silent during [0, 4) of iteration 1 only.
	res := simulate(t, in, s, Intermittent("P2", 1, 0, 1, 4.0), 4)
	outage, after := res.Iterations[1], res.Iterations[2]
	if !outage.Completed {
		t.Fatalf("outage iteration lost outputs: %+v", outage)
	}
	if !after.Completed {
		t.Fatalf("post-recovery iteration lost outputs: %+v", after)
	}
	// During the outage the failover machinery fires (P2 hosts main
	// replicas whose sends are missed).
	if outage.TimeoutsFired == 0 {
		t.Error("outage iteration should fire failover timeouts")
	}
	// The outage is not a permanent failure: the detections are mistakes in
	// the permanent sense and are counted as such.
	if outage.FalseDetections == 0 {
		t.Error("intermittent outage should register as detection of a live processor")
	}
	// Re-integration: once P2 speaks on the bus again, its flag is cleared,
	// and the iterations after recovery match the failure-free execution.
	if got := res.Iterations[3]; got.ResponseTime != free.ResponseTime || got.TimeoutsFired != 0 {
		t.Errorf("post-recovery iteration differs from failure-free: %+v vs %+v", got, free)
	}
	if len(res.DetectedProcs) != 0 {
		t.Errorf("fail flags not cleared after re-integration: %v", res.DetectedProcs)
	}
	if got := res.RecoveredProcs; len(got) != 1 || got[0] != "P2" {
		t.Errorf("RecoveredProcs = %v", got)
	}
}

// TestIntermittentWholeIterationOutage covers an outage spanning a full
// iteration: the processor contributes nothing to that iteration and comes
// back in the next one.
func TestIntermittentWholeIterationOutage(t *testing.T) {
	in := paperex.BusInstance()
	s := schedule(t, in, core.FT1, 1)
	// Silent from iteration 1 t=0 through iteration 2 t=0.
	res := simulate(t, in, s, Intermittent("P2", 1, 0, 2, 0), 4)
	for _, ir := range res.Iterations {
		if !ir.Completed {
			t.Fatalf("iteration %d lost outputs: %+v", ir.Index, ir)
		}
	}
	free := simulate(t, in, s, Scenario{}, 1).Iterations[0]
	last := res.Iterations[3]
	if last.ResponseTime != free.ResponseTime {
		t.Errorf("iteration after re-integration responds in %v, failure-free %v",
			last.ResponseTime, free.ResponseTime)
	}
}

// TestIntermittentFT2 checks that the second solution also rides through an
// outage (its replicated comms need no detection at all), and that the
// recovered processor's sends simply resume.
func TestIntermittentFT2(t *testing.T) {
	in := paperex.TriangleInstance()
	s := schedule(t, in, core.FT2, 1)
	res := simulate(t, in, s, Intermittent("P2", 1, 1.0, 1, 5.0), 3)
	for _, ir := range res.Iterations {
		if !ir.Completed {
			t.Fatalf("iteration %d lost outputs", ir.Index)
		}
		if ir.TimeoutsFired != 0 {
			t.Error("FT2 never fires timeouts")
		}
	}
	free := simulate(t, in, s, Scenario{}, 1).Iterations[0]
	if got := res.Iterations[2]; got.MessagesSent != free.MessagesSent {
		t.Errorf("post-recovery messages %d, failure-free %d", got.MessagesSent, free.MessagesSent)
	}
}

// TestIntermittentMidOperation loses exactly the operation in flight.
func TestIntermittentMidOperation(t *testing.T) {
	in := paperex.BusInstance()
	s := schedule(t, in, core.FT1, 1)
	main := s.MainReplica("A")
	mid := (main.Start + main.End) / 2
	// Outage from mid-A to shortly after A would have ended.
	res := simulate(t, in, s, Intermittent(main.Proc, 0, mid, 0, main.End+0.5), 2)
	for _, ir := range res.Iterations {
		if !ir.Completed {
			t.Fatalf("iteration %d lost outputs", ir.Index)
		}
	}
}

// TestIntermittentReceiverMissesMessage: a receiver silent at delivery time
// misses the value and must rely on its own blocked state being tolerated.
func TestIntermittentReceiverMissesMessage(t *testing.T) {
	in := paperex.BusInstance()
	s := schedule(t, in, core.FT1, 1)
	// P3 receives A's broadcast at some point in [3, 5]; keep it silent over
	// that whole window. Its replicas stall, but the mains deliver.
	res := simulate(t, in, s, Intermittent("P3", 0, 2.0, 0, 6.0), 2)
	for _, ir := range res.Iterations {
		if !ir.Completed {
			t.Fatalf("iteration %d lost outputs", ir.Index)
		}
	}
}
