package sim

import (
	"fmt"
	"strings"
)

// RenderTrace renders an iteration's event trace as a one-event-per-line
// timeline, in chronological order.
//
//	[0.000 - 1.000] op       I            on P1
//	[3.000 - 3.500] comm     A->C         on bus
//	[3.500 - 3.500] failover A->C         on P2
func RenderTrace(events []Event) string {
	var b strings.Builder
	for _, ev := range events {
		fmt.Fprintf(&b, "[%7.3f - %7.3f] %-8s %-14s on %s\n",
			ev.Start, ev.End, ev.Kind, ev.What, ev.Where)
	}
	return b.String()
}
