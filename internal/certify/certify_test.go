package certify_test

import (
	"strings"
	"testing"

	"ftsched/internal/certify"
	"ftsched/internal/core"
	"ftsched/internal/paperex"
	"ftsched/internal/sched"
)

func TestCertifyFT1BusPaperExample(t *testing.T) {
	in := paperex.BusInstance()
	res, err := core.ScheduleFT1(in.Graph, in.Arch, in.Spec, in.K, core.Options{})
	if err != nil {
		t.Fatalf("ScheduleFT1: %v", err)
	}
	v, err := certify.Certify(res.Schedule, in.Graph, in.Arch, in.Spec, in.K)
	if err != nil {
		t.Fatalf("Certify: %v", err)
	}
	if !v.Certified {
		t.Fatalf("FT1 bus schedule not certified for K=%d:\n%s", in.K, v.Report())
	}
	if v.Counterexample != nil {
		t.Errorf("certified verdict carries a counterexample")
	}
	if v.Procs != 3 || v.PatternsChecked != 3 || v.PatternsImplied != 1 {
		t.Errorf("pattern accounting = (%d procs, %d checked, %d implied), want (3, 3, 1)",
			v.Procs, v.PatternsChecked, v.PatternsImplied)
	}
	if v.FailureFreeBound <= 0 || v.FailureFreeBound > res.Schedule.Makespan()+1e-6 {
		t.Errorf("failure-free bound %g outside (0, makespan %g]", v.FailureFreeBound, res.Schedule.Makespan())
	}
	if v.WorstBound < v.FailureFreeBound {
		t.Errorf("worst transient bound %g below failure-free bound %g", v.WorstBound, v.FailureFreeBound)
	}
	if v.WorstSteadyBound > v.WorstBound+1e-6 {
		t.Errorf("steady bound %g exceeds transient bound %g", v.WorstSteadyBound, v.WorstBound)
	}
}

func TestCertifyFT2TrianglePaperExample(t *testing.T) {
	in := paperex.TriangleInstance()
	res, err := core.ScheduleFT2(in.Graph, in.Arch, in.Spec, in.K, core.Options{})
	if err != nil {
		t.Fatalf("ScheduleFT2: %v", err)
	}
	v, err := certify.Certify(res.Schedule, in.Graph, in.Arch, in.Spec, in.K)
	if err != nil {
		t.Fatalf("Certify: %v", err)
	}
	if !v.Certified {
		t.Fatalf("FT2 triangle schedule not certified for K=%d:\n%s", in.K, v.Report())
	}
	if v.WorstSteadyBound != v.WorstBound {
		t.Errorf("FT2 has no timeouts: steady bound %g should equal transient bound %g",
			v.WorstSteadyBound, v.WorstBound)
	}
}

func TestCertifyRejectsBasicSchedule(t *testing.T) {
	in := paperex.BusInstance()
	res, err := core.ScheduleBasic(in.Graph, in.Arch, in.Spec, core.Options{})
	if err != nil {
		t.Fatalf("ScheduleBasic: %v", err)
	}
	v, err := certify.Certify(res.Schedule, in.Graph, in.Arch, in.Spec, 1)
	if err != nil {
		t.Fatalf("Certify: %v", err)
	}
	if v.Certified {
		t.Fatalf("basic schedule certified for K=1")
	}
	ce := v.Counterexample
	if ce == nil {
		t.Fatalf("rejected verdict without counterexample")
	}
	if len(ce.FailureSet) != 1 {
		t.Errorf("minimal counterexample %v, want a single processor", ce.FailureSet)
	}
	if ce.Output == "" || len(ce.Path) == 0 {
		t.Errorf("counterexample lacks output (%q) or path (%d lines)", ce.Output, len(ce.Path))
	}
	rep := v.Report()
	if !strings.Contains(rep, "REJECTED") || !strings.Contains(rep, ce.Output) {
		t.Errorf("report missing rejection or output name:\n%s", rep)
	}
}

func TestCertifyBasicAtKZero(t *testing.T) {
	in := paperex.BusInstance()
	res, err := core.ScheduleBasic(in.Graph, in.Arch, in.Spec, core.Options{})
	if err != nil {
		t.Fatalf("ScheduleBasic: %v", err)
	}
	v, err := certify.Certify(res.Schedule, in.Graph, in.Arch, in.Spec, 0)
	if err != nil {
		t.Fatalf("Certify: %v", err)
	}
	if !v.Certified {
		t.Fatalf("basic schedule not certified for K=0:\n%s", v.Report())
	}
	if v.PatternsChecked != 1 || v.PatternsImplied != 0 {
		t.Errorf("K=0 accounting = (%d checked, %d implied), want (1, 0)", v.PatternsChecked, v.PatternsImplied)
	}
	if !timeNear(v.WorstBound, v.FailureFreeBound) {
		t.Errorf("K=0 worst bound %g differs from failure-free bound %g", v.WorstBound, v.FailureFreeBound)
	}
}

func TestCertifyRejectsFT1BeyondItsK(t *testing.T) {
	in := paperex.BusInstance()
	res, err := core.ScheduleFT1(in.Graph, in.Arch, in.Spec, 1, core.Options{})
	if err != nil {
		t.Fatalf("ScheduleFT1: %v", err)
	}
	// Each operation has 2 replicas on 3 processors: some pair of failures
	// must kill both replicas of some operation.
	v, err := certify.Certify(res.Schedule, in.Graph, in.Arch, in.Spec, 2)
	if err != nil {
		t.Fatalf("Certify: %v", err)
	}
	if v.Certified {
		t.Fatalf("K=1 FT1 schedule certified for K=2")
	}
	if v.Counterexample == nil || len(v.Counterexample.FailureSet) != 2 {
		t.Fatalf("counterexample = %+v, want a minimal 2-processor set", v.Counterexample)
	}
}

func TestCertifyErrors(t *testing.T) {
	in := paperex.BusInstance()
	res, err := core.ScheduleFT1(in.Graph, in.Arch, in.Spec, 1, core.Options{})
	if err != nil {
		t.Fatalf("ScheduleFT1: %v", err)
	}
	if _, err := certify.Certify(nil, in.Graph, in.Arch, in.Spec, 1); err == nil {
		t.Errorf("nil schedule accepted")
	}
	if _, err := certify.Certify(res.Schedule, in.Graph, in.Arch, in.Spec, -1); err == nil {
		t.Errorf("negative K accepted")
	}
	// A corrupted schedule must be refused up front, not analyzed.
	bad := sched.New(sched.ModeBasic, 0)
	if _, err := certify.Certify(bad, in.Graph, in.Arch, in.Spec, 0); err == nil {
		t.Errorf("empty schedule accepted")
	}
}

func TestCertifiedReportMentionsBounds(t *testing.T) {
	in := paperex.BusInstance()
	res, err := core.ScheduleFT1(in.Graph, in.Arch, in.Spec, 1, core.Options{})
	if err != nil {
		t.Fatalf("ScheduleFT1: %v", err)
	}
	v, err := certify.Certify(res.Schedule, in.Graph, in.Arch, in.Spec, 1)
	if err != nil {
		t.Fatalf("Certify: %v", err)
	}
	rep := v.Report()
	for _, want := range []string{"CERTIFIED", "failure-free", "worst transient", "steady state", "monotonicity"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func timeNear(a, b float64) bool {
	d := a - b
	return d < 1e-6 && d > -1e-6
}
