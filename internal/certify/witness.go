package certify

import (
	"fmt"
	"strings"

	"ftsched/internal/graph"
)

// maxWitnessDepth bounds the recursion of the broken-data-path explanation;
// deeper causes are elided rather than repeated.
const maxWitnessDepth = 8

// witness builds the counterexample for a failing run: the (already
// minimal) failure set plus a step-by-step explanation of why the first
// missing output can no longer be produced.
func (m *model) witness(failed map[string]bool, r *run) *Counterexample {
	if failed == nil {
		failed = map[string]bool{}
	}
	out := r.missing[0]
	w := &witnesser{m: m, r: r, seenOps: map[string]bool{}, seenEdges: map[edgeProc]bool{}}
	w.addf(0, "output %s: no replica executes", out)
	w.explainOp(out, 1)
	return &Counterexample{
		FailureSet: sortedKeys(failed),
		Output:     out,
		Path:       w.lines,
	}
}

type witnesser struct {
	m         *model
	r         *run
	seenOps   map[string]bool
	seenEdges map[edgeProc]bool
	lines     []string
}

func (w *witnesser) addf(depth int, format string, args ...interface{}) {
	w.lines = append(w.lines, strings.Repeat("  ", depth)+fmt.Sprintf(format, args...))
}

// explainOp explains, replica by replica, why no instance of op executes.
func (w *witnesser) explainOp(op string, depth int) {
	if depth > maxWitnessDepth {
		w.addf(depth, "...")
		return
	}
	if w.seenOps[op] {
		w.addf(depth, "(%s already explained above)", op)
		return
	}
	w.seenOps[op] = true
	for _, sl := range w.m.s.Replicas(op) {
		key := opProc{op, sl.Proc}
		switch {
		case w.r.failed[sl.Proc]:
			w.addf(depth, "replica %d of %s on %s: processor failed", sl.Replica, op, sl.Proc)
		case w.r.isExecutedName(op, sl.Proc):
			w.addf(depth, "replica %d of %s on %s executes, but its value cannot be used", sl.Replica, op, sl.Proc)
		default:
			idx := w.m.slotIdx[key]
			if cur := w.r.cursorName(sl.Proc); cur < idx {
				blocker := w.m.slots[sl.Proc][cur].Op
				w.addf(depth, "replica %d of %s on %s: stuck behind %s in the processor's static sequence", sl.Replica, op, sl.Proc, blocker)
				w.explainStall(blocker, sl.Proc, depth+1)
			} else {
				w.addf(depth, "replica %d of %s on %s: an input never arrives", sl.Replica, op, sl.Proc)
				w.explainStall(op, sl.Proc, depth+1)
			}
		}
	}
}

// explainStall explains why the head instance of proc's sequence cannot
// start: its first unavailable strict input.
func (w *witnesser) explainStall(op, proc string, depth int) {
	if depth > maxWitnessDepth {
		w.addf(depth, "...")
		return
	}
	for _, e := range w.m.preds[op] {
		if !w.r.edgeAvailableName(e, proc) {
			w.explainEdge(e, proc, depth)
			return
		}
	}
	w.addf(depth, "(no single missing input: circular wait)")
}

// explainEdge explains why e's value never becomes available on proc: every
// local replica and every delivery sender is accounted for.
func (w *witnesser) explainEdge(e graph.EdgeKey, proc string, depth int) {
	key := edgeProc{edge: e, proc: proc}
	if w.seenEdges[key] {
		w.addf(depth, "(input %s->%s on %s already explained above)", e.Src, e.Dst, proc)
		return
	}
	w.seenEdges[key] = true
	w.addf(depth, "input %s->%s on %s never arrives:", e.Src, e.Dst, proc)
	producerMissing := false
	if w.m.slotOn(e.Src, proc) != nil && !w.r.isExecutedName(e.Src, proc) {
		w.addf(depth+1, "local replica of %s never executes", e.Src)
		producerMissing = true
	}
	deliveries := w.m.byDst[key]
	for _, d := range deliveries {
		for _, x := range d.senders {
			switch {
			case w.r.failed[x.sd.Proc]:
				w.addf(depth+1, "sender rank %d from %s: processor failed", x.sd.Rank, x.sd.Proc)
			case deadForwarder(w.r, x) != "":
				w.addf(depth+1, "sender rank %d from %s: route forwarder %s failed", x.sd.Rank, x.sd.Proc, deadForwarder(w.r, x))
			case !w.r.isExecutedName(x.sd.Hops[0].Edge.Src, x.sd.Proc):
				w.addf(depth+1, "sender rank %d from %s: its producing replica never executes", x.sd.Rank, x.sd.Proc)
				producerMissing = true
			default:
				w.addf(depth+1, "sender rank %d from %s delivers (unexpected)", x.sd.Rank, x.sd.Proc)
			}
		}
	}
	if len(deliveries) == 0 && w.m.slotOn(e.Src, proc) == nil {
		w.addf(depth+1, "no transfer of %s->%s targets %s", e.Src, e.Dst, proc)
	}
	if producerMissing {
		w.explainOp(e.Src, depth+1)
	}
}

// deadForwarder returns the first failed store-and-forward processor on the
// sender's route, or "".
func deadForwarder(r *run, x *xfer) string {
	for _, f := range x.forwarders {
		if r.failed[f] {
			return f
		}
	}
	return ""
}
