package certify_test

import (
	"fmt"
	"math/rand"
	"testing"

	"ftsched/internal/certify"
	"ftsched/internal/core"
	"ftsched/internal/sim"
	"ftsched/internal/workload"
)

// TestCertifyAgreesWithSimulator cross-checks the static certificate
// against exhaustive fault injection: for random bus and point-to-point
// workloads and K in 1..2, Certify must accept exactly when the simulator
// delivers every output under every failure pattern of at most K processors
// failing at time zero — no false certificates and no false rejections.
func TestCertifyAgreesWithSimulator(t *testing.T) {
	type trial struct {
		name string
		h    core.Heuristic
		k    int
		bus  bool
	}
	var trials []trial
	for k := 1; k <= 2; k++ {
		trials = append(trials,
			trial{fmt.Sprintf("ft1-bus-k%d", k), core.FT1, k, true},
			trial{fmt.Sprintf("ft2-mesh-k%d", k), core.FT2, k, false},
			trial{fmt.Sprintf("basic-bus-k%d", k), core.Basic, k, true},
		)
	}
	certified, rejected := 0, 0
	for seed := int64(1); seed <= 4; seed++ {
		r := rand.New(rand.NewSource(seed))
		in, err := workload.RandomInstance(r, 9, 4, true, 0.5)
		if err != nil {
			t.Fatalf("seed %d: RandomInstance(bus): %v", seed, err)
		}
		mesh, err := workload.RandomInstance(rand.New(rand.NewSource(seed)), 9, 4, false, 0.5)
		if err != nil {
			t.Fatalf("seed %d: RandomInstance(mesh): %v", seed, err)
		}
		for _, tr := range trials {
			inst := in
			if !tr.bus {
				inst = mesh
			}
			schedK := tr.k
			if tr.h == core.Basic {
				schedK = 0
			}
			res, err := core.Schedule(tr.h, inst.Graph, inst.Arch, inst.Spec, schedK, core.Options{})
			if err != nil {
				continue // infeasible draw: nothing to cross-check
			}
			v, err := certify.Certify(res.Schedule, inst.Graph, inst.Arch, inst.Spec, tr.k)
			if err != nil {
				t.Fatalf("seed %d %s: Certify: %v", seed, tr.name, err)
			}
			simOK, worst, simResp := exhaustiveSimulate(t, res, inst, tr.k)
			if v.Certified != simOK {
				t.Errorf("seed %d %s: Certify=%v but exhaustive simulation=%v (worst failing set %v)\n%s",
					seed, tr.name, v.Certified, simOK, worst, v.Report())
			}
			// The date model is conservative for basic and FT2 schedules
			// (active transfers drain in static link order; the simulator
			// only deviates to go earlier). FT1 bounds neglect the link
			// contention of reactivated failover transfers, so they are
			// cross-checked at the verdict level only.
			if v.Certified && simOK && tr.h != core.FT1 && v.WorstBound < simResp-1e-6 {
				t.Errorf("seed %d %s: certified worst bound %g below simulated worst response time %g",
					seed, tr.name, v.WorstBound, simResp)
			}
			if v.Certified {
				certified++
			} else {
				rejected++
				if len(v.Counterexample.FailureSet) > tr.k {
					t.Errorf("seed %d %s: counterexample %v larger than K=%d",
						seed, tr.name, v.Counterexample.FailureSet, tr.k)
				}
			}
		}
	}
	if certified == 0 || rejected == 0 {
		t.Errorf("property test exercised only one side: %d certified, %d rejected", certified, rejected)
	}
}

// exhaustiveSimulate injects every failure pattern of at most k processors
// at iteration 0, time 0, and reports whether all iterations of all runs
// completed, one failing pattern when not, and the worst observed
// first-iteration (transient) response time.
func exhaustiveSimulate(t *testing.T, res *core.Result, in *workload.Instance, k int) (bool, []string, float64) {
	t.Helper()
	procs := in.Arch.ProcessorNames()
	worstResp := 0.0
	for size := 0; size <= k && size <= len(procs); size++ {
		for _, sub := range combinations(procs, size) {
			sc := sim.Scenario{}
			for _, p := range sub {
				sc.Failures = append(sc.Failures, sim.Failure{Proc: p, Iteration: 0, At: 0})
			}
			sr, err := sim.Simulate(res.Schedule, in.Graph, in.Arch, in.Spec, sc, sim.Config{Iterations: 2})
			if err != nil {
				t.Fatalf("Simulate %v: %v", sub, err)
			}
			for _, ir := range sr.Iterations {
				if !ir.Completed {
					return false, sub, worstResp
				}
			}
			if resp := sr.Iterations[0].ResponseTime; resp > worstResp {
				worstResp = resp
			}
		}
	}
	return true, nil, worstResp
}

func combinations(items []string, k int) [][]string {
	var out [][]string
	cur := make([]string, 0, k)
	var rec func(start int)
	rec = func(start int) {
		if len(cur) == k {
			out = append(out, append([]string(nil), cur...))
			return
		}
		for i := start; i <= len(items)-(k-len(cur)); i++ {
			cur = append(cur, items[i])
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return out
}
