// Package certify statically certifies the fault tolerance of a schedule:
// without running the simulator it enumerates processor-failure patterns and
// checks, by propagating data availability through the surviving replicas,
// active transfers, and FT1 failover chains, that every external output is
// still produced, deriving a worst-case response-time bound per pattern.
//
// Failure sets are pruned by monotonicity: within the model, failing more
// processors only removes providers and delays arrivals, so a certificate for
// every frontier pattern of min(K, #procs) failures covers all smaller
// patterns. Only the frontier is fully analyzed; the smaller sets are counted
// as implied.
//
// The frontier is evaluated incrementally: one failure-free fixpoint is
// computed per certificate, and each pattern re-propagates only the union of
// the failed processors' impact cones (see cone.go). Patterns can be streamed
// through a bounded worker pool (Options.Workers) with a deterministic merge,
// so the verdict is bit-identical to the sequential engine.
package certify

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"ftsched/internal/arch"
	"ftsched/internal/graph"
	"ftsched/internal/obs"
	"ftsched/internal/sched"
	"ftsched/internal/spec"
)

// ErrCanceled reports that a certification run was aborted by
// Options.Cancel before reaching a verdict.
var ErrCanceled = errors.New("certify: certification canceled")

// Verdict is the result of certifying a schedule against K processor
// failures.
type Verdict struct {
	// Certified reports whether every failure pattern of at most K
	// processors still delivers every external output.
	Certified bool
	// Mode and ScheduleK identify the analyzed schedule.
	Mode      sched.Mode
	ScheduleK int
	// K is the tolerance level the certificate was requested for.
	K int
	// Procs is the number of processors failure sets are drawn from.
	Procs int
	// PatternsChecked counts the frontier failure sets fully analyzed.
	PatternsChecked int
	// PatternsImplied counts the strictly smaller failure sets covered by
	// monotone pruning instead of explicit analysis (saturating at the
	// integer maximum on very large architectures).
	PatternsImplied int
	// FailureFreeBound is the worst-case response time with no failure.
	FailureFreeBound float64
	// WorstBound is the worst response-time bound over all tolerated
	// patterns in the transient regime: failures are not yet detected, so
	// FT1 receivers wait out the full timeout chains.
	WorstBound float64
	// WorstPattern is a failure pattern attaining WorstBound (nil when K=0).
	WorstPattern []string
	// WorstSteadyBound is the worst bound once the failures are detected and
	// FT1 skips the timeouts of senders marked faulty. Equal to WorstBound
	// for ModeBasic and ModeFT2, which have no timeouts.
	WorstSteadyBound float64
	// Counterexample describes a minimal failing pattern when Certified is
	// false.
	Counterexample *Counterexample
}

// Counterexample is a concrete failure pattern breaking the schedule,
// shrunk to a minimal set, with the broken data path explained.
type Counterexample struct {
	// FailureSet is a minimal set of processors whose simultaneous failure
	// loses an output: removing any one of them keeps the schedule alive.
	FailureSet []string
	// Output is the first external output no longer produced.
	Output string
	// Path explains why no replica of Output can execute, one step per
	// line, from the output down to the failed providers.
	Path []string
}

// Options tunes how a certificate is computed. The zero value is the
// default engine: incremental cone-based evaluation, sequential frontier.
// Every option combination produces a bit-identical Verdict; the knobs only
// trade wall-clock time for resources.
type Options struct {
	// Workers bounds the worker pool streaming frontier patterns through
	// the evaluator. Values <= 1 evaluate sequentially. Workers only read
	// shared model state; results are merged back in enumeration order, so
	// the verdict (including WorstPattern and the counterexample) is
	// identical to the sequential engine.
	Workers int
	// Full forces the reference full-fixpoint evaluation for every pattern
	// instead of the incremental cone-based path. The verdict is identical
	// either way; the flag exists for differential testing and as an
	// escape hatch.
	Full bool
	// Obs is an optional observability sink recording pattern enumeration
	// and pruning counts, cone sizes, cache hit rates, fixpoint rounds, and
	// per-phase spans. Nil disables collection.
	Obs *obs.Sink
	// Cancel, when non-nil, is a cooperative cancellation flag: the
	// frontier enumeration polls it between patterns and aborts with
	// ErrCanceled when it is raised. A run that completes is bit-identical
	// whether or not a flag was attached. Callers with a context should
	// prefer the ftsched.CertifyContext entry point, which raises the flag
	// when the context is done.
	Cancel *atomic.Bool
}

// canceled reports whether the cooperative cancellation flag is raised.
func (o Options) canceled() bool {
	return o.Cancel != nil && o.Cancel.Load()
}

// Certify statically checks that schedule s tolerates every pattern of at
// most k processor failures, given the problem it was produced for. The
// schedule must pass Validate; k may exceed the schedule's own K (the
// certificate will then normally fail, with a counterexample).
func Certify(s *sched.Schedule, g *graph.Graph, a *arch.Architecture, sp *spec.Spec, k int) (*Verdict, error) {
	return CertifyWith(s, g, a, sp, k, Options{})
}

// CertifyObs is Certify with an observability sink: pattern enumeration and
// pruning counts, fixpoint iterations, and per-phase spans are recorded on
// sink (which may be nil, disabling collection). The verdict is identical
// either way.
func CertifyObs(s *sched.Schedule, g *graph.Graph, a *arch.Architecture, sp *spec.Spec, k int, sink *obs.Sink) (*Verdict, error) {
	return CertifyWith(s, g, a, sp, k, Options{Obs: sink})
}

// CertifyWith is Certify with explicit engine options.
func CertifyWith(s *sched.Schedule, g *graph.Graph, a *arch.Architecture, sp *spec.Spec, k int, opts Options) (*Verdict, error) {
	if s == nil {
		return nil, fmt.Errorf("certify: nil schedule")
	}
	if k < 0 {
		return nil, fmt.Errorf("certify: negative tolerance K=%d", k)
	}
	if err := s.Validate(g, a, sp); err != nil {
		return nil, fmt.Errorf("certify: schedule is not well-formed: %w", err)
	}
	sink := opts.Obs
	indexSpan := sink.StartSpan("certify", "index")
	m := newModel(s, g, a, sp)
	m.ins.resolve(sink)
	m.obs = sink
	indexSpan.End()
	v := &Verdict{
		Mode:      s.Mode,
		ScheduleK: s.K,
		K:         k,
		Procs:     len(m.procs),
	}

	// Failure-free baseline, plus a consistency check: the recomputed dates
	// must never exceed the schedule's own static dates.
	baseSpan := sink.StartSpan("certify", "baseline")
	ff := m.evalFull(nil, false)
	baseSpan.End()
	if !ff.completed {
		v.Counterexample = m.witness(nil, ff)
		return v, nil
	}
	for sid, end := range ff.end {
		if !ff.executed[sid] {
			continue
		}
		if end > m.slotSEnd[sid]+1e-6 {
			name := m.slotName[sid]
			return nil, fmt.Errorf("certify: internal inconsistency: recomputed completion %.4g of %s on %s exceeds static date %.4g",
				end, name.op, name.proc, m.slotSEnd[sid])
		}
	}
	v.FailureFreeBound = ff.resp
	v.WorstBound = ff.resp
	v.WorstSteadyBound = ff.resp
	if !opts.Full {
		// Arm the incremental engine: cache the failure-free fixpoint and
		// build the per-processor impact cones every pattern evaluation
		// re-propagates from.
		coneSpan := sink.StartSpan("certify", "cones")
		m.prepareIncremental(ff)
		coneSpan.End()
	}

	size := k
	if size > v.Procs {
		size = v.Procs
	}
	frontierSpan := sink.StartSpan("certify", "frontier")
	defer frontierSpan.End()
	failing, err := m.frontier(v, size, opts)
	if err != nil {
		return nil, err
	}
	if failing != nil {
		min := m.shrink(failing)
		v.Counterexample = m.witness(min, m.evalFull(min, false))
		return v, nil
	}
	for i := 0; i < size; i++ {
		v.PatternsImplied = addSat(v.PatternsImplied, binomial(v.Procs, i))
	}
	m.ins.implied.Add(int64(v.PatternsImplied))
	v.Certified = true
	return v, nil
}

// patternResult is one frontier pattern's evaluation outcome, carried from
// the evaluator (possibly a pool worker) to the deterministic merge.
type patternResult struct {
	idx       int
	sub       []string
	completed bool
	resp      float64 // transient worst-case response bound
	steady    float64 // steady-state bound (failures detected)
}

// checkPattern evaluates one frontier pattern: the transient bound, and for
// FT1 the steady-state bound with the failures detected.
func (m *model) checkPattern(idx int, sub []string) patternResult {
	failed := make(map[string]bool, len(sub))
	for _, p := range sub {
		failed[p] = true
	}
	o := m.evalOutcome(failed, false)
	pr := patternResult{idx: idx, sub: sub, completed: o.completed, resp: o.resp, steady: o.resp}
	if o.completed && m.s.Mode == sched.ModeFT1 {
		pr.steady = m.evalOutcome(failed, true).resp
	}
	return pr
}

// consume merges one pattern result into the verdict, in enumeration order:
// worst transient bound with its first attaining pattern, worst steady
// bound. It reports whether the pattern fails, ending the frontier.
func (v *Verdict) consume(m *model, pr patternResult) bool {
	v.PatternsChecked++
	m.ins.patterns.Inc()
	if !pr.completed {
		return true
	}
	if pr.resp > v.WorstBound {
		v.WorstBound = pr.resp
		v.WorstPattern = append([]string(nil), pr.sub...)
	}
	if pr.steady > v.WorstSteadyBound {
		v.WorstSteadyBound = pr.steady
	}
	return false
}

// frontier evaluates every size-`size` failure pattern in lexicographic
// order and merges the results into v. It returns the first failing pattern
// (as a set), or nil when every pattern tolerates the failures, or
// ErrCanceled if opts.Cancel was raised before the enumeration finished.
func (m *model) frontier(v *Verdict, size int, opts Options) (map[string]bool, error) {
	if opts.Workers > 1 {
		pr, err := m.frontierParallel(v, size, opts.Workers, opts.Cancel)
		if err != nil {
			return nil, err
		}
		if pr != nil {
			return setOf(pr.sub), nil
		}
		return nil, nil
	}
	enum := newPatternEnum(m.procs, size)
	for idx := 0; ; idx++ {
		if opts.canceled() {
			return nil, ErrCanceled
		}
		sub := enum.next()
		if sub == nil {
			return nil, nil
		}
		if pr := m.checkPattern(idx, sub); v.consume(m, pr) {
			return setOf(pr.sub), nil
		}
	}
}

// setOf builds the failure set of a pattern.
func setOf(sub []string) map[string]bool {
	failed := make(map[string]bool, len(sub))
	for _, p := range sub {
		failed[p] = true
	}
	return failed
}

// shrink greedily reduces a failing pattern to a minimal one: it keeps
// removing any processor whose removal still loses an output, until every
// remaining processor is necessary. The heavily overlapping subsets it
// probes mostly hit the canonical eval cache.
func (m *model) shrink(failed map[string]bool) map[string]bool {
	set := make(map[string]bool, len(failed))
	for p := range failed {
		set[p] = true
	}
	for changed := true; changed; { //ftlint:allow-nopoll bounded: every round that continues removes a processor from the set, so rounds <= |pattern|+1
		changed = false
		for _, p := range sortedKeys(set) {
			delete(set, p)
			if !m.evalOutcome(set, false).completed {
				changed = true
				continue
			}
			set[p] = true
		}
	}
	return set
}

// binomial returns C(n, k), saturating at the integer maximum instead of
// wrapping: pattern accounting on very large architectures degrades to "at
// least this many" rather than to a silently negative or truncated count.
func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k // C(n,k) = C(n,n-k); the smaller loop also overflows later
	}
	c := 1
	for i := 0; i < k; i++ {
		if c > math.MaxInt/(n-i) {
			return math.MaxInt // the exact product no longer fits; saturate
		}
		c = c * (n - i) / (i + 1)
	}
	return c
}

// addSat is saturating addition for non-negative counts.
func addSat(a, b int) int {
	if a > math.MaxInt-b {
		return math.MaxInt
	}
	return a + b
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// fmtTime renders a schedule date compactly, with infinities spelled out.
func fmtTime(t float64) string {
	if math.IsInf(t, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.4g", t)
}
