// Package certify statically certifies the fault tolerance of a schedule:
// without running the simulator it enumerates processor-failure patterns and
// checks, by propagating data availability through the surviving replicas,
// active transfers, and FT1 failover chains, that every external output is
// still produced, deriving a worst-case response-time bound per pattern.
//
// Failure sets are pruned by monotonicity: within the model, failing more
// processors only removes providers and delays arrivals, so a certificate for
// every frontier pattern of min(K, #procs) failures covers all smaller
// patterns. Only the frontier is fully analyzed; the smaller sets are counted
// as implied.
package certify

import (
	"fmt"
	"math"
	"sort"

	"ftsched/internal/arch"
	"ftsched/internal/graph"
	"ftsched/internal/obs"
	"ftsched/internal/sched"
	"ftsched/internal/spec"
)

// Verdict is the result of certifying a schedule against K processor
// failures.
type Verdict struct {
	// Certified reports whether every failure pattern of at most K
	// processors still delivers every external output.
	Certified bool
	// Mode and ScheduleK identify the analyzed schedule.
	Mode      sched.Mode
	ScheduleK int
	// K is the tolerance level the certificate was requested for.
	K int
	// Procs is the number of processors failure sets are drawn from.
	Procs int
	// PatternsChecked counts the frontier failure sets fully analyzed.
	PatternsChecked int
	// PatternsImplied counts the strictly smaller failure sets covered by
	// monotone pruning instead of explicit analysis.
	PatternsImplied int
	// FailureFreeBound is the worst-case response time with no failure.
	FailureFreeBound float64
	// WorstBound is the worst response-time bound over all tolerated
	// patterns in the transient regime: failures are not yet detected, so
	// FT1 receivers wait out the full timeout chains.
	WorstBound float64
	// WorstPattern is a failure pattern attaining WorstBound (nil when K=0).
	WorstPattern []string
	// WorstSteadyBound is the worst bound once the failures are detected and
	// FT1 skips the timeouts of senders marked faulty. Equal to WorstBound
	// for ModeBasic and ModeFT2, which have no timeouts.
	WorstSteadyBound float64
	// Counterexample describes a minimal failing pattern when Certified is
	// false.
	Counterexample *Counterexample
}

// Counterexample is a concrete failure pattern breaking the schedule,
// shrunk to a minimal set, with the broken data path explained.
type Counterexample struct {
	// FailureSet is a minimal set of processors whose simultaneous failure
	// loses an output: removing any one of them keeps the schedule alive.
	FailureSet []string
	// Output is the first external output no longer produced.
	Output string
	// Path explains why no replica of Output can execute, one step per
	// line, from the output down to the failed providers.
	Path []string
}

// Certify statically checks that schedule s tolerates every pattern of at
// most k processor failures, given the problem it was produced for. The
// schedule must pass Validate; k may exceed the schedule's own K (the
// certificate will then normally fail, with a counterexample).
func Certify(s *sched.Schedule, g *graph.Graph, a *arch.Architecture, sp *spec.Spec, k int) (*Verdict, error) {
	return CertifyObs(s, g, a, sp, k, nil)
}

// CertifyObs is Certify with an observability sink: pattern enumeration and
// pruning counts, fixpoint iterations, and per-phase spans are recorded on
// sink (which may be nil, disabling collection). The verdict is identical
// either way.
func CertifyObs(s *sched.Schedule, g *graph.Graph, a *arch.Architecture, sp *spec.Spec, k int, sink *obs.Sink) (*Verdict, error) {
	if s == nil {
		return nil, fmt.Errorf("certify: nil schedule")
	}
	if k < 0 {
		return nil, fmt.Errorf("certify: negative tolerance K=%d", k)
	}
	if err := s.Validate(g, a, sp); err != nil {
		return nil, fmt.Errorf("certify: schedule is not well-formed: %w", err)
	}
	indexSpan := sink.StartSpan("certify", "index")
	m := newModel(s, g, a, sp)
	m.ins.resolve(sink)
	indexSpan.End()
	v := &Verdict{
		Mode:      s.Mode,
		ScheduleK: s.K,
		K:         k,
		Procs:     len(m.procs),
	}

	// Failure-free baseline, plus a consistency check: the recomputed dates
	// must never exceed the schedule's own static dates.
	baseSpan := sink.StartSpan("certify", "baseline")
	ff := m.eval(nil, false)
	baseSpan.End()
	if !ff.completed {
		v.Counterexample = m.witness(nil, ff)
		return v, nil
	}
	for key, end := range ff.end { //ftlint:order-insensitive consistency probe: any violating entry aborts with an error; pass/fail is order-independent
		sl := m.slotOn(key.op, key.proc)
		if sl == nil || end > sl.End+1e-6 {
			return nil, fmt.Errorf("certify: internal inconsistency: recomputed completion %.4g of %s on %s exceeds static date %.4g",
				end, key.op, key.proc, sl.End)
		}
	}
	v.FailureFreeBound = ff.resp
	v.WorstBound = ff.resp
	v.WorstSteadyBound = ff.resp

	size := k
	if size > v.Procs {
		size = v.Procs
	}
	frontierSpan := sink.StartSpan("certify", "frontier")
	defer frontierSpan.End()
	for _, sub := range subsets(m.procs, size) {
		failed := make(map[string]bool, len(sub))
		for _, p := range sub {
			failed[p] = true
		}
		r := m.eval(failed, false)
		v.PatternsChecked++
		m.ins.patterns.Inc()
		if !r.completed {
			min := m.shrink(failed)
			v.Counterexample = m.witness(min, m.eval(min, false))
			return v, nil
		}
		if r.resp > v.WorstBound {
			v.WorstBound = r.resp
			v.WorstPattern = append([]string(nil), sub...)
		}
		steady := r.resp
		if s.Mode == sched.ModeFT1 {
			steady = m.eval(failed, true).resp
		}
		if steady > v.WorstSteadyBound {
			v.WorstSteadyBound = steady
		}
	}
	for i := 0; i < size; i++ {
		v.PatternsImplied += binomial(v.Procs, i)
	}
	m.ins.implied.Add(int64(v.PatternsImplied))
	v.Certified = true
	return v, nil
}

// shrink greedily reduces a failing pattern to a minimal one: it keeps
// removing any processor whose removal still loses an output, until every
// remaining processor is necessary.
func (m *model) shrink(failed map[string]bool) map[string]bool {
	set := make(map[string]bool, len(failed))
	for p := range failed { //ftlint:order-insensitive verbatim copy into a fresh set; distinct-key writes commute
		set[p] = true
	}
	for changed := true; changed; {
		changed = false
		for _, p := range sortedKeys(set) {
			delete(set, p)
			if !m.eval(set, false).completed {
				changed = true
				continue
			}
			set[p] = true
		}
	}
	return set
}

// subsets enumerates the size-k subsets of procs in deterministic
// lexicographic order (a single empty subset when k == 0).
func subsets(procs []string, k int) [][]string {
	var out [][]string
	cur := make([]string, 0, k)
	var rec func(start int)
	rec = func(start int) {
		if len(cur) == k {
			out = append(out, append([]string(nil), cur...))
			return
		}
		for i := start; i <= len(procs)-(k-len(cur)); i++ {
			cur = append(cur, procs[i])
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return out
}

func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	c := 1
	for i := 0; i < k; i++ {
		c = c * (n - i) / (i + 1)
	}
	return c
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// fmtTime renders a schedule date compactly, with infinities spelled out.
func fmtTime(t float64) string {
	if math.IsInf(t, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.4g", t)
}
