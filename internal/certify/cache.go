package certify

import "strings"

// evalKey canonically identifies one failure-set evaluation: the sorted
// failure set plus the detection regime. The zero key is the failure-free
// transient baseline.
type evalKey struct {
	canon  string
	detect bool
}

// outcome is the cached result of one failure-set evaluation: whether every
// output survives and, if so, the worst-case response-time bound.
type outcome struct {
	completed bool
	resp      float64
}

// canonKey renders a failure set canonically (sorted, unit-separated), so
// the same set reached through different orders shares one cache entry.
func canonKey(failed map[string]bool) string {
	return strings.Join(sortedKeys(failed), "\x1f")
}

// eval dispatches one failure-set evaluation: the incremental cone engine
// once armed, the reference full fixpoint otherwise.
func (m *model) eval(failed map[string]bool, detect bool) *run {
	if m.ff != nil {
		return m.evalIncr(failed, detect)
	}
	return m.evalFull(failed, detect)
}

// evalOutcome evaluates one failure set through the canonical cache. The
// frontier's transient/steady pairs and the shrinker's heavily overlapping
// probes hit the same entries; pool workers share the cache under a mutex
// (two workers may race to compute the same key, in which case both store
// the identical value — the engine is deterministic per key).
func (m *model) evalOutcome(failed map[string]bool, detect bool) outcome {
	key := evalKey{canon: canonKey(failed), detect: detect}
	m.cacheMu.Lock()
	o, hit := m.cache[key]
	m.cacheMu.Unlock()
	if hit {
		m.ins.cacheHits.Inc()
		return o
	}
	m.ins.cacheMiss.Inc()
	r := m.eval(failed, detect)
	o = outcome{completed: r.completed, resp: r.resp}
	m.cacheMu.Lock()
	m.cache[key] = o
	m.cacheMu.Unlock()
	return o
}
