package certify_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"ftsched/internal/certify"
	"ftsched/internal/core"
	"ftsched/internal/workload"
)

// engineVariants is the option matrix the differential tests sweep: the
// reference full-fixpoint sequential engine, the incremental cone-based
// engine, and both under a worker pool. Every variant must produce a
// bit-identical Verdict — that is the contract Options documents.
var engineVariants = []struct {
	name string
	opts certify.Options
}{
	{"full-seq", certify.Options{Full: true}},
	{"incr-seq", certify.Options{}},
	{"full-w4", certify.Options{Full: true, Workers: 4}},
	{"incr-w4", certify.Options{Workers: 4}},
	{"incr-w2", certify.Options{Workers: 2}},
}

// assertVariantsAgree certifies one schedule under every engine variant and
// fails unless all verdicts — including WorstPattern, the steady bound, and
// the shrunk counterexample — are deeply equal to the reference.
func assertVariantsAgree(t *testing.T, label string, in *workload.Instance, res *core.Result, k int) *certify.Verdict {
	t.Helper()
	var ref *certify.Verdict
	for _, variant := range engineVariants {
		v, err := certify.CertifyWith(res.Schedule, in.Graph, in.Arch, in.Spec, k, variant.opts)
		if err != nil {
			t.Fatalf("%s: CertifyWith(%s): %v", label, variant.name, err)
		}
		if ref == nil {
			ref = v
			continue
		}
		if !reflect.DeepEqual(v, ref) {
			t.Errorf("%s: %s verdict diverged from %s:\n got %+v\nwant %+v",
				label, variant.name, engineVariants[0].name, v, ref)
		}
	}
	return ref
}

// TestCertifyDifferential sweeps random bus and point-to-point workloads
// through every engine variant. Both certification outcomes must be
// exercised: accepted schedules pin WorstBound/WorstPattern equality, and
// rejected ones (certifying beyond the schedule's K) pin that the parallel
// merge and the shared eval cache still shrink the exact same minimal
// counterexample as the sequential reference.
func TestCertifyDifferential(t *testing.T) {
	accepted, rejected := 0, 0
	for seed := int64(1); seed <= 5; seed++ {
		for _, bus := range []bool{true, false} {
			r := rand.New(rand.NewSource(seed))
			in, err := workload.RandomInstance(r, 12, 4, bus, 0.8)
			if err != nil {
				t.Fatalf("seed %d: RandomInstance: %v", seed, err)
			}
			h := core.FT1
			if !bus {
				h = core.FT2
			}
			res, err := core.Schedule(h, in.Graph, in.Arch, in.Spec, 1, core.Options{})
			if err != nil {
				continue // infeasible draw: nothing to compare
			}
			for k := 1; k <= 2; k++ {
				label := fmt.Sprintf("seed=%d bus=%v k=%d", seed, bus, k)
				v := assertVariantsAgree(t, label, in, res, k)
				if v.Certified {
					accepted++
				} else {
					rejected++
					if v.Counterexample == nil {
						t.Errorf("%s: rejected without a counterexample", label)
					}
				}
			}
		}
	}
	if accepted == 0 || rejected == 0 {
		t.Errorf("differential test exercised only one side: %d accepted, %d rejected", accepted, rejected)
	}
}

// TestCertifyDifferentialWideFrontier pushes a larger frontier (C(8,2)=28 and
// C(8,3)=56 patterns) through the pool so out-of-order completion, the reorder
// buffer, and cooperative cancellation all actually trigger under -race.
func TestCertifyDifferentialWideFrontier(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	in, err := workload.RandomInstance(r, 24, 8, true, 0.8)
	if err != nil {
		t.Fatalf("RandomInstance: %v", err)
	}
	res, err := core.ScheduleFT1(in.Graph, in.Arch, in.Spec, 2, core.Options{})
	if err != nil {
		t.Skipf("draw infeasible at K=2: %v", err)
	}
	for k := 2; k <= 3; k++ {
		assertVariantsAgree(t, fmt.Sprintf("wide k=%d", k), in, res, k)
	}
}

// FuzzCertifyDifferential fuzzes the engine equivalence: any instance shape
// the generator accepts must produce deeply equal verdicts from the
// sequential full engine and the parallel incremental one.
func FuzzCertifyDifferential(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(3), true, uint8(1))
	f.Add(int64(2), uint8(14), uint8(4), false, uint8(2))
	f.Add(int64(7), uint8(9), uint8(5), true, uint8(2))
	f.Add(int64(11), uint8(16), uint8(4), true, uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, ops, procs uint8, bus bool, k uint8) {
		nOps := 4 + int(ops)%17    // 4..20 operations
		nProcs := 2 + int(procs)%5 // 2..6 processors
		tol := 1 + int(k)%3        // certify K in 1..3
		in, err := workload.RandomInstance(rand.New(rand.NewSource(seed)), nOps, nProcs, bus, 0.8)
		if err != nil {
			t.Skip()
		}
		res, err := core.ScheduleFT1(in.Graph, in.Arch, in.Spec, 1, core.Options{})
		if err != nil {
			t.Skip()
		}
		ref, err := certify.CertifyWith(res.Schedule, in.Graph, in.Arch, in.Spec, tol, certify.Options{Full: true})
		if err != nil {
			t.Fatalf("CertifyWith(full-seq): %v", err)
		}
		got, err := certify.CertifyWith(res.Schedule, in.Graph, in.Arch, in.Spec, tol, certify.Options{Workers: 3})
		if err != nil {
			t.Fatalf("CertifyWith(incr-w3): %v", err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("incremental parallel verdict diverged:\n got %+v\nwant %+v", got, ref)
		}
	})
}
