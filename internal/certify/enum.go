package certify

// patternEnum streams the size-k subsets of procs in deterministic
// lexicographic order without materializing the C(P, k) patterns up front.
// For k == 0 it yields a single empty subset.
type patternEnum struct {
	procs   []string
	idx     []int // current combination as indices into procs
	k       int
	started bool
	done    bool
}

// newPatternEnum returns an enumerator over the size-k subsets of procs.
// k larger than len(procs) enumerates nothing.
func newPatternEnum(procs []string, k int) *patternEnum {
	e := &patternEnum{procs: procs, k: k}
	if k < 0 || k > len(procs) {
		e.done = true
	}
	return e
}

// next returns the next subset as a fresh slice, or nil when the enumeration
// is exhausted.
func (e *patternEnum) next() []string {
	if e.done {
		return nil
	}
	if !e.started {
		e.started = true
		e.idx = make([]int, e.k)
		for i := range e.idx {
			e.idx[i] = i
		}
	} else {
		// Advance the rightmost index that still has room, then reset the
		// tail to the run immediately after it — the textbook successor in
		// lexicographic combination order.
		i := e.k - 1
		for i >= 0 && e.idx[i] == len(e.procs)-(e.k-i) {
			i--
		}
		if i < 0 {
			e.done = true
			return nil
		}
		e.idx[i]++
		for j := i + 1; j < e.k; j++ {
			e.idx[j] = e.idx[j-1] + 1
		}
	}
	out := make([]string, e.k)
	for i, ix := range e.idx {
		out[i] = e.procs[ix]
	}
	if e.k == 0 {
		e.done = true
	}
	return out
}
