package certify

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"ftsched/internal/core"
	"ftsched/internal/paperex"
)

// A pre-raised cancel flag aborts the frontier on both engine paths.
func TestCancelPreRaisedAborts(t *testing.T) {
	in := paperex.BusInstance()
	res, err := core.ScheduleFT1(in.Graph, in.Arch, in.Spec, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		var flag atomic.Bool
		flag.Store(true)
		_, err := CertifyWith(res.Schedule, in.Graph, in.Arch, in.Spec, 1,
			Options{Workers: workers, Cancel: &flag})
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("workers=%d: got err %v, want ErrCanceled", workers, err)
		}
	}
}

// An attached-but-never-raised flag must not change the verdict on either
// engine path.
func TestCancelUnraisedIsIdentical(t *testing.T) {
	in := paperex.BusInstance()
	res, err := core.ScheduleFT1(in.Graph, in.Arch, in.Spec, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Certify(res.Schedule, in.Graph, in.Arch, in.Spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		var flag atomic.Bool
		flagged, err := CertifyWith(res.Schedule, in.Graph, in.Arch, in.Spec, 1,
			Options{Workers: workers, Cancel: &flag})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, flagged) {
			t.Fatalf("workers=%d: verdict changed when a cancel flag was attached:\n%+v\nvs\n%+v",
				workers, plain, flagged)
		}
	}
}
