package certify

import (
	"fmt"
	"strings"
)

// Report renders the verdict as a human-readable multi-line summary, the
// text printed by the command-line tool's -certify flag.
func (v *Verdict) Report() string {
	var b strings.Builder
	if v.Certified {
		fmt.Fprintf(&b, "certification: %s schedule (scheduled for K=%d) CERTIFIED for K=%d over %d processors\n",
			v.Mode, v.ScheduleK, v.K, v.Procs)
		fmt.Fprintf(&b, "  failure patterns: %d frontier analyzed, %d smaller implied by monotonicity\n",
			v.PatternsChecked, v.PatternsImplied)
		fmt.Fprintf(&b, "  response-time bounds: failure-free %s", fmtTime(v.FailureFreeBound))
		if v.K > 0 {
			fmt.Fprintf(&b, ", worst transient %s", fmtTime(v.WorstBound))
			if len(v.WorstPattern) > 0 {
				fmt.Fprintf(&b, " under failure of {%s}", strings.Join(v.WorstPattern, ", "))
			}
			fmt.Fprintf(&b, ", steady state after detection %s", fmtTime(v.WorstSteadyBound))
		}
		b.WriteString("\n")
		return b.String()
	}
	fmt.Fprintf(&b, "certification: %s schedule (scheduled for K=%d) REJECTED for K=%d over %d processors\n",
		v.Mode, v.ScheduleK, v.K, v.Procs)
	if ce := v.Counterexample; ce != nil {
		fmt.Fprintf(&b, "  minimal counterexample: fail {%s}, output %s is lost\n",
			strings.Join(ce.FailureSet, ", "), ce.Output)
		b.WriteString("  broken data path:\n")
		for _, line := range ce.Path {
			fmt.Fprintf(&b, "    %s\n", line)
		}
	}
	return b.String()
}
