package certify

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// frontierParallel streams the frontier through a bounded worker pool and
// merges the results back in enumeration order, so the verdict is
// bit-identical to the sequential loop: the same first-wins worst-bound
// tie-breaks, and on failure the lexicographically smallest failing pattern
// (the one the sequential engine would have stopped at) wins regardless of
// which worker finishes first. Workers only read shared model state — the
// cached fixpoint, the cones, the indexes — and synchronize solely through
// the eval cache's mutex and the channels here.
//
// Cancellation is cooperative: once the in-order merge hits a failing
// pattern it raises the stop flag; the producer stops feeding, and workers
// drain their remaining jobs without evaluating them. Later-indexed results
// (evaluated or skipped) are discarded by the merge, exactly like the
// patterns the sequential engine never reached.
//
// An external cancel flag (Options.Cancel) rides the same machinery: the
// producer polls it per pattern and stops feeding when it is raised. If the
// enumeration was cut short that way without a verdict-deciding pattern,
// the run fails with ErrCanceled instead of returning a partial verdict.
func (m *model) frontierParallel(v *Verdict, size, workers int, cancel *atomic.Bool) (*patternResult, error) {
	type job struct {
		idx int
		sub []string
	}
	var stop, interrupted atomic.Bool
	jobs := make(chan job, workers)
	results := make(chan patternResult, workers)
	var wg sync.WaitGroup
	m.ins.workers.Add(int64(workers))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			track := fmt.Sprintf("certify/w%d", w)
			for j := range jobs {
				if stop.Load() {
					// Drained after the verdict was decided: report the slot
					// so the merge's reorder buffer stays dense, skip the
					// evaluation.
					results <- patternResult{idx: j.idx, sub: j.sub, completed: true}
					continue
				}
				span := m.obs.StartSpan(track, "pattern")
				pr := m.checkPattern(j.idx, j.sub)
				span.End()
				results <- pr
			}
		}(w)
	}
	go func() {
		enum := newPatternEnum(m.procs, size)
		for idx := 0; ; idx++ {
			if cancel != nil && cancel.Load() {
				interrupted.Store(true)
				break
			}
			sub := enum.next()
			if sub == nil || stop.Load() {
				break
			}
			jobs <- job{idx: idx, sub: sub}
		}
		close(jobs)
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	// Deterministic merge: buffer out-of-order arrivals and consume strictly
	// in enumeration order with the same logic as the sequential engine.
	var failing *patternResult
	pending := map[int]patternResult{}
	next := 0
	for pr := range results {
		if failing != nil {
			continue // draining: the verdict is already decided
		}
		pending[pr.idx] = pr
		for { //ftlint:allow-nopoll bounded: each trip consumes one buffered out-of-order result, of which there are at most len(patterns)
			p, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if v.consume(m, p) {
				cp := p
				failing = &cp
				stop.Store(true)
				break
			}
		}
	}
	if failing == nil && interrupted.Load() {
		return nil, ErrCanceled
	}
	return failing, nil
}
