package certify

import (
	"fmt"
	"math"
	"reflect"
	"testing"
)

// materializedSubsets is the recursive enumerator the streaming patternEnum
// replaced, kept verbatim as the reference: the new enumerator must yield the
// same subsets in the same lexicographic order, because the frontier's
// first-wins tie-breaks and the counterexample choice both hang off that
// order.
func materializedSubsets(procs []string, k int) [][]string {
	var out [][]string
	cur := make([]string, 0, k)
	var rec func(start int)
	rec = func(start int) {
		if len(cur) == k {
			out = append(out, append([]string(nil), cur...))
			return
		}
		for i := start; i <= len(procs)-(k-len(cur)); i++ {
			cur = append(cur, procs[i])
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return out
}

// TestPatternEnumMatchesMaterialized drains the streaming enumerator for
// every (n, k) up to n=8 and checks count and order against the reference.
func TestPatternEnumMatchesMaterialized(t *testing.T) {
	for n := 0; n <= 8; n++ {
		procs := make([]string, n)
		for i := range procs {
			procs[i] = fmt.Sprintf("P%02d", i)
		}
		for k := 0; k <= n+1; k++ {
			want := materializedSubsets(procs, k)
			enum := newPatternEnum(procs, k)
			var got [][]string
			for sub := enum.next(); sub != nil; sub = enum.next() {
				got = append(got, sub)
			}
			if k > n {
				if len(got) != 0 {
					t.Errorf("n=%d k=%d: enumerated %d subsets, want none", n, k, len(got))
				}
				continue
			}
			if len(got) != binomial(n, k) {
				t.Errorf("n=%d k=%d: enumerated %d subsets, want C(n,k)=%d", n, k, len(got), binomial(n, k))
			}
			// Compare rendered patterns: DeepEqual would distinguish the
			// reference's nil empty subset from the enumerator's non-nil one.
			for i := range want {
				if i >= len(got) || fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
					t.Errorf("n=%d k=%d: enumeration order diverged at %d:\n got %v\nwant %v", n, k, i, got, want)
					break
				}
			}
		}
	}
}

// TestPatternEnumReturnsFreshSlices pins that next() never aliases its
// internal state: the pool hands subsets to concurrent workers.
func TestPatternEnumReturnsFreshSlices(t *testing.T) {
	enum := newPatternEnum([]string{"a", "b", "c"}, 2)
	first := enum.next()
	snapshot := append([]string(nil), first...)
	enum.next()
	enum.next()
	if !reflect.DeepEqual(first, snapshot) {
		t.Errorf("next() mutated a previously returned subset: %v, was %v", first, snapshot)
	}
}

// TestBinomialSaturates is the overflow regression test: the pre-saturation
// binomial wrapped to garbage (often negative) on wide architectures, which
// PatternsImplied then reported as a certificate covering a negative number
// of patterns.
func TestBinomialSaturates(t *testing.T) {
	exact := []struct{ n, k, want int }{
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {5, 2, 10}, {10, 3, 120},
		{52, 5, 2598960}, {61, 30, 232714176627630544},
		{4, 5, 0}, {3, -1, 0},
	}
	for _, c := range exact {
		if got := binomial(c.n, c.k); got != c.want {
			t.Errorf("binomial(%d, %d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
	saturated := []struct{ n, k int }{
		{63, 31},      // exact value fits, but an intermediate product does not: conservative saturation
		{128, 64},     // genuinely past MaxInt: the old code wrapped through negative here
		{1 << 40, 2},  // the multiply n*(n-1) alone overflows
		{1 << 40, 20}, // deep loop over a huge n
	}
	for _, c := range saturated {
		if got := binomial(c.n, c.k); got != math.MaxInt {
			t.Errorf("binomial(%d, %d) = %d, want saturation at MaxInt", c.n, c.k, got)
		}
		if got := binomial(c.n, c.k); got < 0 {
			t.Errorf("binomial(%d, %d) went negative: %d", c.n, c.k, got)
		}
	}
	// Symmetry: the k > n-k reduction must not change small results.
	if binomial(10, 7) != binomial(10, 3) {
		t.Errorf("binomial symmetry broken: C(10,7)=%d C(10,3)=%d", binomial(10, 7), binomial(10, 3))
	}
}

// TestAddSat pins the saturating accumulator PatternsImplied sums with.
func TestAddSat(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 0, 0},
		{1, 2, 3},
		{math.MaxInt, 0, math.MaxInt},
		{math.MaxInt, 1, math.MaxInt},
		{math.MaxInt - 5, 5, math.MaxInt},
		{math.MaxInt - 5, 6, math.MaxInt},
		{math.MaxInt, math.MaxInt, math.MaxInt},
	}
	for _, c := range cases {
		if got := addSat(c.a, c.b); got != c.want {
			t.Errorf("addSat(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
