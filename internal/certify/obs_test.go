package certify_test

import (
	"testing"

	"ftsched/internal/certify"
	"ftsched/internal/core"
	"ftsched/internal/obs"
	"ftsched/internal/paperex"
)

// TestCertifyObsCounters checks that an instrumented certification reaches
// the same verdict as a plain one and that its counters agree with the
// verdict's own pattern accounting.
func TestCertifyObsCounters(t *testing.T) {
	in := paperex.BusInstance()
	res, err := core.ScheduleFT1(in.Graph, in.Arch, in.Spec, in.K, core.Options{})
	if err != nil {
		t.Fatalf("ScheduleFT1: %v", err)
	}
	plain, err := certify.Certify(res.Schedule, in.Graph, in.Arch, in.Spec, in.K)
	if err != nil {
		t.Fatalf("Certify: %v", err)
	}
	sink := obs.NewSink()
	v, err := certify.CertifyObs(res.Schedule, in.Graph, in.Arch, in.Spec, in.K, sink)
	if err != nil {
		t.Fatalf("CertifyObs: %v", err)
	}
	if v.Certified != plain.Certified || v.PatternsChecked != plain.PatternsChecked ||
		v.WorstBound != plain.WorstBound {
		t.Errorf("instrumented verdict differs: %+v vs %+v", v, plain)
	}

	snap := sink.Snapshot()
	if snap["certify.patterns.checked"] != int64(v.PatternsChecked) {
		t.Errorf("certify.patterns.checked = %d, verdict says %d",
			snap["certify.patterns.checked"], v.PatternsChecked)
	}
	if snap["certify.patterns.implied"] != int64(v.PatternsImplied) {
		t.Errorf("certify.patterns.implied = %d, verdict says %d",
			snap["certify.patterns.implied"], v.PatternsImplied)
	}
	if snap["certify.evals"] == 0 || snap["certify.fixpoint.rounds"] == 0 {
		t.Errorf("availability counters missing: %v", snap)
	}
	if snap["certify.evals.incremental"] == 0 || snap["certify.cache.misses"] == 0 {
		t.Errorf("incremental-engine counters missing: %v", snap)
	}
	timers := sink.Timers()
	for _, name := range []string{"index", "baseline", "cones", "frontier"} {
		if timers[name].Count != 1 {
			t.Errorf("phase %q: %d spans, want 1", name, timers[name].Count)
		}
	}
}

// TestCertifyNilSink pins the delegation contract: Certify is CertifyObs
// with a nil sink, and a nil sink never panics.
func TestCertifyNilSink(t *testing.T) {
	in := paperex.TriangleInstance()
	res, err := core.ScheduleFT2(in.Graph, in.Arch, in.Spec, in.K, core.Options{})
	if err != nil {
		t.Fatalf("ScheduleFT2: %v", err)
	}
	v, err := certify.CertifyObs(res.Schedule, in.Graph, in.Arch, in.Spec, in.K, nil)
	if err != nil {
		t.Fatalf("CertifyObs(nil sink): %v", err)
	}
	if !v.Certified {
		t.Errorf("FT2 triangle schedule should certify:\n%s", v.Report())
	}
}
