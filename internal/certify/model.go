package certify

import (
	"math"
	"sort"
	"sync"

	"ftsched/internal/arch"
	"ftsched/internal/graph"
	"ftsched/internal/obs"
	"ftsched/internal/sched"
	"ftsched/internal/spec"
)

// instruments holds the certifier's pre-resolved counters; the zero value is
// the disabled state (every hit is a nil check).
type instruments struct {
	patterns  *obs.Counter // frontier failure patterns fully analyzed
	implied   *obs.Counter // smaller patterns covered by monotone pruning
	evals     *obs.Counter // failure-set evaluations (incl. shrinking)
	rounds    *obs.Counter // fixpoint iterations across all evaluations
	evalsFull *obs.Counter // evaluations through the reference full fixpoint
	evalsIncr *obs.Counter // evaluations through the incremental cone engine
	cacheHits *obs.Counter // canonical eval-cache hits
	cacheMiss *obs.Counter // canonical eval-cache misses
	coneSlots *obs.Counter // dirty slot cells re-propagated by incremental evals
	coneHops  *obs.Counter // dirty queue entries re-propagated by incremental evals
	workers   *obs.Counter // pool workers engaged by parallel frontiers
}

// resolve registers the certifier's counters on the sink (no-op when nil).
func (in *instruments) resolve(s *obs.Sink) {
	if s == nil {
		return
	}
	in.patterns = s.Counter("certify.patterns.checked")
	in.implied = s.Counter("certify.patterns.implied")
	in.evals = s.Counter("certify.evals")
	in.rounds = s.Counter("certify.fixpoint.rounds")
	in.evalsFull = s.Counter("certify.evals.full")
	in.evalsIncr = s.Counter("certify.evals.incremental")
	in.cacheHits = s.Counter("certify.cache.hits")
	in.cacheMiss = s.Counter("certify.cache.misses")
	in.coneSlots = s.Counter("certify.cone.dirty.slots")
	in.coneHops = s.Counter("certify.cone.dirty.hops")
	in.workers = s.Counter("certify.pool.workers")
}

type opProc struct{ op, proc string }

type edgeProc struct {
	edge graph.EdgeKey
	proc string
}

// xfer is one sender of a delivery, keeping the descriptive (name-level)
// facts the witness and cone builders need and the compiled id the
// evaluator runs on.
type xfer struct {
	sd         *sched.Sender
	d          *delivery // owning delivery
	forwarders []string
	id         int32 // index into model.cxfers
}

// delivery wraps a sched.Delivery for the analysis.
type delivery struct {
	edge    graph.EdgeKey
	chain   bool
	senders []*xfer  // rank order
	rcvs    []string // receiving processors, deterministic order
	id      int32    // index into model.cdelivs
}

// qent is one active hop in a link's static communication order, the order
// the communication units execute their transfers in.
type qent struct {
	x   *xfer
	hop int // original hop index on the sender's route
	dur float64
}

// The c* tables below are the compiled form of the schedule the evaluator
// runs on: every operation instance, transfer, and queue entry is a dense
// integer, so a failure-set evaluation is pure array arithmetic (the
// map-keyed predecessor spent ~85% of its time hashing composite keys).
// Identifiers: pid = processor, sid = slot (operation instance),
// xid = transfer sender, did = delivery, hid = active hop (queue entry),
// lid = link.

// cinput is one strict input of a slot: the producer's local replica (if
// co-located) and the deliveries that can provide the value remotely.
type cinput struct {
	localSid int32 // sid of the producer's replica on the same processor, -1 if none
	delivs   []int32
}

// cxfer is a compiled sender.
type cxfer struct {
	srcPid   int32
	prodSid  int32   // producing replica on the source processor, -1 if unscheduled
	fwd      []int32 // store-and-forward pids that must survive
	passive  bool
	deadline float64
	dur      float64 // end-to-end route duration (failover activation)
	hops     []int32 // active hop ids, route order
	last     int32   // final active hop, -1 if none
	did      int32   // owning delivery
}

// cdeliv is a compiled delivery.
type cdeliv struct {
	chain   bool
	senders []int32 // xids, rank order
}

// coutput is one external output with its replica slots.
type coutput struct {
	op   string
	sids []int32 // in s.Replicas order
}

// model caches the schedule structure shared by every failure-set
// evaluation: the descriptive (name-keyed) indexes used for cone
// construction, witnesses, and reports, plus the compiled dense tables the
// evaluator runs on. After prepareIncremental it also carries the
// failure-free fixpoint, the per-processor impact cones, and the
// failure-free link-drain dates the incremental engine seeds from; all of
// that is read-only during the frontier, so pool workers share it without
// locks (the eval cache has its own mutex).
type model struct {
	s  *sched.Schedule
	g  *graph.Graph
	a  *arch.Architecture
	sp *spec.Spec

	procs   []string // all architecture processors (failure domain)
	slots   map[string][]*sched.OpSlot
	slotIdx map[opProc]int // position of a replica in its processor sequence
	preds   map[string][]graph.EdgeKey
	outputs []string
	byDst   map[edgeProc][]*delivery // deliveries observed by (edge, receiver)
	links   []string                 // links with active hops, sorted
	queues  map[string][]*qent       // per link, active hops in static order

	// Compiled tables (see the c* types above).
	pidOf     map[string]int
	seq       [][]int32 // pid -> sids in static-sequence order
	slotName  []opProc  // sid -> (op, proc)
	slotSid   map[opProc]int32
	slotDur   []float64
	slotSEnd  []float64  // sid -> static completion date (consistency check)
	slotPos   []int32    // sid -> index in its processor's sequence
	slotProc  []int32    // sid -> pid
	slotIn    [][]cinput // sid -> strict inputs
	slotXfers [][]int32  // sid -> xids the slot's value feeds
	consSids  [][]int32  // did -> consuming slots on the receiving processors
	outs      []coutput
	cxfers    []cxfer
	cdelivs   []cdeliv
	hopXfer   []int32 // hid -> xid
	hopDur    []float64
	hopPrev   []int32   // hid -> data source: prev active hid, -1 producer, -2 never queue-fed
	hopLid    []int32   // hid -> lid
	hopQPos   []int32   // hid -> position in its link's queue
	cqueues   [][]int32 // lid -> hids in static communication order
	viaXfers  [][]int32 // pid -> xids that die with the processor (src or forwarder)
	zerosP    []int32   // all-zero per-pid boundaries (full-scope propagation)
	zerosL    []int32
	allPids   []int32
	allLids   []int32

	ff        *run        // failure-free fixpoint (nil until prepareIncremental)
	cones     []*cone     // pid -> impact cone
	freeAfter [][]float64 // lid -> ff link-drain date entering each queue position

	cacheMu sync.Mutex
	cache   map[evalKey]outcome

	obs *obs.Sink
	ins instruments
}

func newModel(s *sched.Schedule, g *graph.Graph, a *arch.Architecture, sp *spec.Spec) *model {
	m := &model{
		s: s, g: g, a: a, sp: sp,
		procs:   a.ProcessorNames(),
		slots:   make(map[string][]*sched.OpSlot),
		slotIdx: make(map[opProc]int),
		preds:   make(map[string][]graph.EdgeKey),
		byDst:   make(map[edgeProc][]*delivery),
		cache:   make(map[evalKey]outcome),
	}
	for _, p := range s.Procs() {
		m.slots[p] = s.ProcSlots(p)
		for i, sl := range m.slots[p] {
			m.slotIdx[opProc{sl.Op, p}] = i
		}
	}
	for _, op := range g.OpNames() {
		for _, pred := range g.StrictPreds(op) {
			m.preds[op] = append(m.preds[op], graph.EdgeKey{Src: pred, Dst: op})
		}
	}
	// Outputs follow the simulator's delivery criterion: the output extios,
	// or the graph's sinks for headless workloads.
	m.outputs = g.Outputs()
	if len(m.outputs) == 0 {
		m.outputs = g.Sinks()
	}
	type staticHop struct {
		ent   *qent
		start float64
		id    int
		hop   int
	}
	perLink := map[string][]staticHop{}
	var deliveries []*delivery
	for _, d := range s.Deliveries() {
		cd := &delivery{edge: d.Edge, chain: d.Chain, rcvs: d.Receivers(a), id: int32(len(deliveries))}
		deliveries = append(deliveries, cd)
		for _, sd := range d.Senders {
			x := &xfer{sd: sd, d: cd, forwarders: sd.ForwardProcs()}
			cd.senders = append(cd.senders, x)
			for i, h := range sd.Hops {
				if h.Passive {
					continue
				}
				perLink[h.Link] = append(perLink[h.Link], staticHop{
					ent:   &qent{x: x, hop: i, dur: h.Duration()},
					start: h.Start,
					id:    h.TransferID,
					hop:   i,
				})
			}
		}
		for _, rcv := range cd.rcvs {
			key := edgeProc{edge: d.Edge, proc: rcv}
			m.byDst[key] = append(m.byDst[key], cd)
		}
	}
	// Per-link static communication order, the simulator's queue discipline.
	m.queues = make(map[string][]*qent, len(perLink))
	for link, hops := range perLink { //ftlint:order-insensitive each iteration writes only m.queues[link] for its own ranged key
		sort.SliceStable(hops, func(i, j int) bool {
			if math.Abs(hops[i].start-hops[j].start) > 1e-9 {
				return hops[i].start < hops[j].start
			}
			if hops[i].id != hops[j].id {
				return hops[i].id < hops[j].id
			}
			return hops[i].hop < hops[j].hop
		})
		q := make([]*qent, len(hops))
		for i, h := range hops {
			q[i] = h.ent
		}
		m.queues[link] = q
		m.links = append(m.links, link)
	}
	sort.Strings(m.links)
	m.compile(deliveries)
	return m
}

// compile lowers the name-keyed indexes into the dense tables the evaluator
// runs on. All identifier assignment follows deterministic orders (processor
// list, sequence order, sorted links, delivery order), so the tables — and
// every evaluation over them — are reproducible.
func (m *model) compile(deliveries []*delivery) {
	P := len(m.procs)
	m.pidOf = make(map[string]int, P)
	for i, p := range m.procs {
		m.pidOf[p] = i
	}
	// Slots.
	m.seq = make([][]int32, P)
	m.slotSid = make(map[opProc]int32)
	for pid, p := range m.procs {
		for i, sl := range m.slots[p] {
			sid := int32(len(m.slotName))
			m.seq[pid] = append(m.seq[pid], sid)
			m.slotName = append(m.slotName, opProc{sl.Op, p})
			m.slotSid[opProc{sl.Op, p}] = sid
			m.slotDur = append(m.slotDur, sl.Duration())
			m.slotSEnd = append(m.slotSEnd, sl.End)
			m.slotPos = append(m.slotPos, int32(i))
			m.slotProc = append(m.slotProc, int32(pid))
		}
	}
	// Transfers and deliveries.
	m.viaXfers = make([][]int32, P)
	m.slotXfers = make([][]int32, len(m.slotName))
	for _, d := range deliveries {
		cd := cdeliv{chain: d.chain}
		var cons []int32
		for _, rcv := range d.rcvs {
			if sid, ok := m.slotSid[opProc{d.edge.Dst, rcv}]; ok {
				cons = append(cons, sid)
			}
		}
		m.consSids = append(m.consSids, cons)
		for _, x := range d.senders {
			xid := int32(len(m.cxfers))
			x.id = xid
			cd.senders = append(cd.senders, xid)
			srcPid := int32(m.pidOf[x.sd.Proc])
			cx := cxfer{
				srcPid:   srcPid,
				prodSid:  -1,
				passive:  x.sd.Passive,
				deadline: x.sd.Deadline,
				dur:      x.sd.Duration(),
				last:     -1,
				did:      d.id,
			}
			if sid, ok := m.slotSid[opProc{x.sd.Hops[0].Edge.Src, x.sd.Proc}]; ok {
				cx.prodSid = sid
			}
			for _, f := range x.forwarders {
				cx.fwd = append(cx.fwd, int32(m.pidOf[f]))
			}
			m.viaXfers[srcPid] = append(m.viaXfers[srcPid], xid)
			for _, f := range cx.fwd {
				m.viaXfers[f] = append(m.viaXfers[f], xid)
			}
			if cx.prodSid >= 0 {
				m.slotXfers[cx.prodSid] = append(m.slotXfers[cx.prodSid], xid)
			}
			m.cxfers = append(m.cxfers, cx)
		}
		m.cdelivs = append(m.cdelivs, cd)
	}
	// Hops, in the sorted-link queue orders. Hop identity within a route
	// preserves the original (possibly passive-interleaved) indexing through
	// hopPrev: the previous active hop feeds the next, the producing replica
	// feeds an initial hop, and a hop behind a passive one is never
	// queue-fed (matching the reference date equations).
	type xh struct {
		hid int32
		hop int
	}
	perXfer := make([][]xh, len(m.cxfers))
	m.cqueues = make([][]int32, len(m.links))
	for lid, link := range m.links {
		for pos, ent := range m.queues[link] {
			hid := int32(len(m.hopXfer))
			m.hopXfer = append(m.hopXfer, ent.x.id)
			m.hopDur = append(m.hopDur, ent.dur)
			m.hopLid = append(m.hopLid, int32(lid))
			m.hopQPos = append(m.hopQPos, int32(pos))
			m.cqueues[lid] = append(m.cqueues[lid], hid)
			perXfer[ent.x.id] = append(perXfer[ent.x.id], xh{hid: hid, hop: ent.hop})
		}
	}
	m.hopPrev = make([]int32, len(m.hopXfer))
	for xid := range m.cxfers {
		hs := perXfer[xid]
		sort.Slice(hs, func(i, j int) bool { return hs[i].hop < hs[j].hop })
		for i, h := range hs {
			m.cxfers[xid].hops = append(m.cxfers[xid].hops, h.hid)
			switch {
			case h.hop == 0:
				m.hopPrev[h.hid] = -1 // fed by the producing replica
			case i > 0 && hs[i-1].hop == h.hop-1:
				m.hopPrev[h.hid] = hs[i-1].hid
			default:
				m.hopPrev[h.hid] = -2 // behind a passive hop: never queue-fed
			}
		}
		if n := len(hs); n > 0 {
			m.cxfers[xid].last = hs[n-1].hid
		}
	}
	// Outputs.
	for _, out := range m.outputs {
		co := coutput{op: out}
		for _, sl := range m.s.Replicas(out) {
			co.sids = append(co.sids, m.slotSid[opProc{out, sl.Proc}])
		}
		m.outs = append(m.outs, co)
	}
	// Per-slot strict inputs.
	m.slotIn = make([][]cinput, len(m.slotName))
	for sid, name := range m.slotName {
		for _, e := range m.preds[name.op] {
			in := cinput{localSid: -1}
			if lsid, ok := m.slotSid[opProc{e.Src, name.proc}]; ok {
				in.localSid = lsid
			}
			for _, d := range m.byDst[edgeProc{edge: e, proc: name.proc}] {
				in.delivs = append(in.delivs, d.id)
			}
			m.slotIn[sid] = append(m.slotIn[sid], in)
		}
	}
	// Full-scope iteration lists and zero boundaries.
	m.allPids = make([]int32, P)
	m.zerosP = make([]int32, P)
	for i := range m.allPids {
		m.allPids[i] = int32(i)
	}
	m.allLids = make([]int32, len(m.links))
	m.zerosL = make([]int32, len(m.links))
	for i := range m.allLids {
		m.allLids[i] = int32(i)
	}
}

// slotOn returns op's replica slot on proc, or nil.
func (m *model) slotOn(op, proc string) *sched.OpSlot {
	if i, ok := m.slotIdx[opProc{op, proc}]; ok {
		return m.slots[proc][i]
	}
	return nil
}

// prepareIncremental arms the incremental engine: it caches the failure-free
// fixpoint as the state every pattern evaluation is cloned from, precomputes
// the per-position link-drain dates the partial queue relaxations seed with,
// and builds the per-processor impact cones.
func (m *model) prepareIncremental(ff *run) {
	m.ff = ff
	m.freeAfter = make([][]float64, len(m.cqueues))
	for lid, q := range m.cqueues {
		fa := make([]float64, len(q)+1)
		free := 0.0
		for j, hid := range q {
			fa[j] = free
			if ff.delivers(m.hopXfer[hid]) {
				free = ff.hopEnd[hid]
			}
		}
		fa[len(q)] = free
		m.freeAfter[lid] = fa
	}
	m.cones = make([]*cone, len(m.procs))
	for pid := range m.procs {
		m.cones[pid] = m.buildCone(pid)
	}
	// The empty failure set is the baseline itself; seed the cache so the
	// shrinker's final removals hit it.
	m.cache[evalKey{}] = outcome{completed: ff.completed, resp: ff.resp}
}

// dateEq reports near-equality of propagated dates, treating two +Inf
// estimates as equal.
func dateEq(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.IsInf(a, 1) && math.IsInf(b, 1)
	}
	return math.Abs(a-b) < 1e-9
}
