package certify

import (
	"math"
	"sort"

	"ftsched/internal/arch"
	"ftsched/internal/graph"
	"ftsched/internal/obs"
	"ftsched/internal/sched"
	"ftsched/internal/spec"
)

// instruments holds the certifier's pre-resolved counters; the zero value is
// the disabled state (every hit is a nil check).
type instruments struct {
	patterns *obs.Counter // frontier failure patterns fully analyzed
	implied  *obs.Counter // smaller patterns covered by monotone pruning
	evals    *obs.Counter // failure-set evaluations (incl. shrinking)
	rounds   *obs.Counter // fixpoint iterations across all evaluations
}

// resolve registers the certifier's counters on the sink (no-op when nil).
func (in *instruments) resolve(s *obs.Sink) {
	if s == nil {
		return
	}
	in.patterns = s.Counter("certify.patterns.checked")
	in.implied = s.Counter("certify.patterns.implied")
	in.evals = s.Counter("certify.evals")
	in.rounds = s.Counter("certify.fixpoint.rounds")
}

type opProc struct{ op, proc string }

type edgeProc struct {
	edge graph.EdgeKey
	proc string
}

// xfer is one sender of a delivery with its route facts precomputed: the
// processors that must survive for the value to get through, the on-link
// duration, and the static arrival date.
type xfer struct {
	sd         *sched.Sender
	forwarders []string
	dur        float64
	staticEnd  float64
}

// delivery wraps a sched.Delivery for the analysis.
type delivery struct {
	edge    graph.EdgeKey
	chain   bool
	senders []*xfer // rank order
}

// hopKey addresses one hop of a transfer in the date propagation.
type hopKey struct {
	transfer int
	hop      int
}

// qent is one active hop in a link's static communication order, the order
// the communication units execute their transfers in.
type qent struct {
	x   *xfer
	hop int
	dur float64
}

// model caches the schedule structure shared by every failure-set
// evaluation, so certifying K failure patterns costs one pass of indexing
// plus one cheap propagation per pattern.
type model struct {
	s  *sched.Schedule
	g  *graph.Graph
	a  *arch.Architecture
	sp *spec.Spec

	procs   []string // all architecture processors (failure domain)
	slots   map[string][]*sched.OpSlot
	slotIdx map[opProc]int // position of a replica in its processor sequence
	preds   map[string][]graph.EdgeKey
	outputs []string
	byDst   map[edgeProc][]*delivery // deliveries observed by (edge, receiver)
	links   []string                 // links with active hops, sorted
	queues  map[string][]*qent       // per link, active hops in static order
	ins     instruments
}

func newModel(s *sched.Schedule, g *graph.Graph, a *arch.Architecture, sp *spec.Spec) *model {
	m := &model{
		s: s, g: g, a: a, sp: sp,
		procs:   a.ProcessorNames(),
		slots:   make(map[string][]*sched.OpSlot),
		slotIdx: make(map[opProc]int),
		preds:   make(map[string][]graph.EdgeKey),
		byDst:   make(map[edgeProc][]*delivery),
	}
	for _, p := range s.Procs() {
		m.slots[p] = s.ProcSlots(p)
		for i, sl := range m.slots[p] {
			m.slotIdx[opProc{sl.Op, p}] = i
		}
	}
	for _, op := range g.OpNames() {
		for _, pred := range g.StrictPreds(op) {
			m.preds[op] = append(m.preds[op], graph.EdgeKey{Src: pred, Dst: op})
		}
	}
	// Outputs follow the simulator's delivery criterion: the output extios,
	// or the graph's sinks for headless workloads.
	m.outputs = g.Outputs()
	if len(m.outputs) == 0 {
		m.outputs = g.Sinks()
	}
	type staticHop struct {
		ent   *qent
		start float64
		id    int
		hop   int
	}
	perLink := map[string][]staticHop{}
	for _, d := range s.Deliveries() {
		cd := &delivery{edge: d.Edge, chain: d.Chain}
		for _, sd := range d.Senders {
			last := sd.Hops[len(sd.Hops)-1]
			x := &xfer{
				sd:         sd,
				forwarders: sd.ForwardProcs(),
				dur:        sd.Duration(),
				staticEnd:  last.End,
			}
			cd.senders = append(cd.senders, x)
			for i, h := range sd.Hops {
				if h.Passive {
					continue
				}
				perLink[h.Link] = append(perLink[h.Link], staticHop{
					ent:   &qent{x: x, hop: i, dur: h.Duration()},
					start: h.Start,
					id:    h.TransferID,
					hop:   i,
				})
			}
		}
		for _, rcv := range d.Receivers(a) {
			key := edgeProc{edge: d.Edge, proc: rcv}
			m.byDst[key] = append(m.byDst[key], cd)
		}
	}
	// Per-link static communication order, the simulator's queue discipline.
	m.queues = make(map[string][]*qent, len(perLink))
	for link, hops := range perLink { //ftlint:order-insensitive each iteration writes only m.queues[link] for its own ranged key
		sort.SliceStable(hops, func(i, j int) bool {
			if math.Abs(hops[i].start-hops[j].start) > 1e-9 {
				return hops[i].start < hops[j].start
			}
			if hops[i].id != hops[j].id {
				return hops[i].id < hops[j].id
			}
			return hops[i].hop < hops[j].hop
		})
		q := make([]*qent, len(hops))
		for i, h := range hops {
			q[i] = h.ent
		}
		m.queues[link] = q
		m.links = append(m.links, link)
	}
	sort.Strings(m.links)
	return m
}

// slotOn returns op's replica slot on proc, or nil.
func (m *model) slotOn(op, proc string) *sched.OpSlot {
	if i, ok := m.slotIdx[opProc{op, proc}]; ok {
		return m.slots[proc][i]
	}
	return nil
}

// run is the outcome of evaluating one failure set: which replicas execute,
// the worst-case completion dates of the executed prefixes, and whether
// every output is still delivered.
type run struct {
	m      *model
	failed map[string]bool
	detect bool // failed processors already detected (FT1 skips their timeouts)

	cursor   map[string]int // per alive processor: executed prefix length
	executed map[opProc]bool
	end      map[opProc]float64 // worst-case completion, executed instances only
	hopEnd   map[hopKey]float64 // worst-case end of each transmitting active hop

	completed bool
	missing   []string // undelivered outputs, in graph order
	resp      float64  // worst-case response-time bound (max over outputs)
}

// eval computes the least fixed point of "replica executes" under the
// failure set — the static mirror of the simulator's semantics: a processor
// executes its static sequence in order, an operation starts once every
// strict input is available locally, and a delivery provides a value when
// some sender with a surviving route and a computing producer exists (first
// rank for FT1 chains, any sender otherwise). When every output survives,
// worst-case dates are then propagated over the executed instances.
func (m *model) eval(failed map[string]bool, detect bool) *run {
	m.ins.evals.Inc()
	r := &run{
		m: m, failed: failed, detect: detect,
		cursor:   make(map[string]int, len(m.slots)),
		executed: make(map[opProc]bool),
		end:      make(map[opProc]float64),
		hopEnd:   make(map[hopKey]float64),
	}
	if r.failed == nil {
		r.failed = map[string]bool{}
	}
	// Phase 1: reachability. Round-based forward chaining; each round
	// advances every alive processor's cursor as far as its head inputs
	// allow, until no processor can advance (the rest is blocked forever,
	// exactly as a simulator iteration reaches quiescence).
	for progress := true; progress; {
		m.ins.rounds.Inc()
		progress = false
		for _, p := range m.procs {
			if r.failed[p] {
				continue
			}
			seq := m.slots[p]
			for r.cursor[p] < len(seq) {
				sl := seq[r.cursor[p]]
				if !r.inputsAvailable(sl.Op, p) {
					break
				}
				r.executed[opProc{sl.Op, p}] = true
				r.cursor[p]++
				progress = true
			}
		}
	}
	r.completed = true
	for _, out := range m.outputs {
		if !r.anyReplicaExecutes(out) {
			r.completed = false
			r.missing = append(r.missing, out)
		}
	}
	if r.completed {
		r.propagateDates()
	}
	return r
}

// inputsAvailable reports whether every strict input of op is available on
// proc under the failure set, given the currently executed instances.
func (r *run) inputsAvailable(op, proc string) bool {
	for _, e := range r.m.preds[op] {
		if !r.edgeAvailable(e, proc) {
			return false
		}
	}
	return true
}

// edgeAvailable reports whether e's value reaches proc: a local replica of
// the producer executes, or some delivery targeting proc has a surviving
// sender whose producer executes.
func (r *run) edgeAvailable(e graph.EdgeKey, proc string) bool {
	if r.executed[opProc{e.Src, proc}] {
		return true
	}
	for _, d := range r.m.byDst[edgeProc{edge: e, proc: proc}] {
		for _, x := range d.senders {
			if r.senderDelivers(x) {
				return true
			}
		}
	}
	return false
}

// senderDelivers reports whether a sender's value gets through: its source
// and every store-and-forward processor on its route survive, and its
// producing replica executes.
func (r *run) senderDelivers(x *xfer) bool {
	if r.failed[x.sd.Proc] || !r.executed[opProc{r.producerOf(x), x.sd.Proc}] {
		return false
	}
	for _, f := range x.forwarders {
		if r.failed[f] {
			return false
		}
	}
	return true
}

func (r *run) producerOf(x *xfer) string { return x.sd.Hops[0].Edge.Src }

// anyReplicaExecutes reports whether at least one replica of op executed.
func (r *run) anyReplicaExecutes(op string) bool {
	for _, sl := range r.m.s.Replicas(op) {
		if r.executed[opProc{op, sl.Proc}] {
			return true
		}
	}
	return false
}

// propagateDates computes worst-case completion dates over the executed
// instances by iterating the monotone date equations from +Inf downward
// until they stabilize. An operation starts after its predecessor on the
// processor and after each input's worst-case arrival. Transmitting active
// hops execute in their link's static communication order, each waiting for
// its data and for the link to drain the earlier transmitting entries (the
// simulator's queue discipline). An FT1 failover transfer activates at the
// statically computed deadline of the ranks it replaces and runs its hops
// back to back; the link time of a reactivated transfer is not charged to
// the queued entries (the receivers of a failover are idle waiting for it),
// the one approximation of the analysis.
func (r *run) propagateDates() {
	n := 0
	for _, p := range r.m.procs {
		n += r.cursor[p]
	}
	for _, q := range r.m.queues {
		n += len(q)
	}
	for key := range r.executed { //ftlint:order-insensitive writes the same constant to a distinct key per iteration
		r.end[key] = math.Inf(1)
	}
	for _, link := range r.m.links {
		for _, q := range r.m.queues[link] {
			if r.senderDelivers(q.x) {
				r.hopEnd[hopKey{q.x.sd.TransferID(), q.hop}] = math.Inf(1)
			}
		}
	}
	for round := 0; round <= n+1; round++ {
		r.m.ins.rounds.Inc()
		changed := false
		for _, link := range r.m.links {
			free := 0.0
			for _, q := range r.m.queues[link] {
				if !r.senderDelivers(q.x) {
					continue // never transmits: the queue skips it
				}
				ready := math.Inf(1)
				if q.hop == 0 {
					ready = r.end[opProc{r.producerOf(q.x), q.x.sd.Proc}]
				} else if d, ok := r.hopEnd[hopKey{q.x.sd.TransferID(), q.hop - 1}]; ok {
					ready = d
				}
				end := math.Max(ready, free) + q.dur
				key := hopKey{q.x.sd.TransferID(), q.hop}
				if !dateEq(end, r.hopEnd[key]) {
					r.hopEnd[key] = end
					changed = true
				}
				free = end
			}
		}
		for _, p := range r.m.procs {
			if r.failed[p] {
				continue
			}
			t := 0.0
			for i := 0; i < r.cursor[p]; i++ {
				sl := r.m.slots[p][i]
				start := t
				for _, e := range r.m.preds[sl.Op] {
					if at := r.availDate(e, p); at > start {
						start = at
					}
				}
				end := start + sl.Duration()
				key := opProc{sl.Op, p}
				if !dateEq(end, r.end[key]) {
					r.end[key] = end
					changed = true
				}
				t = end
			}
		}
		if !changed {
			break
		}
	}
	r.resp = 0
	for _, out := range r.m.outputs {
		best := math.Inf(1)
		for _, sl := range r.m.s.Replicas(out) {
			if d, ok := r.end[opProc{out, sl.Proc}]; ok && d < best {
				best = d
			}
		}
		if best > r.resp {
			r.resp = best
		}
	}
}

// availDate returns the worst-case date e's value is available on proc
// (+Inf while upstream dates are still settling).
func (r *run) availDate(e graph.EdgeKey, proc string) float64 {
	best := math.Inf(1)
	if d, ok := r.end[opProc{e.Src, proc}]; ok && d < best {
		best = d
	}
	for _, d := range r.m.byDst[edgeProc{edge: e, proc: proc}] {
		if at := r.deliveryDate(d); at < best {
			best = at
		}
	}
	return best
}

// arrival returns the worst-case final-hop arrival of a delivering active
// sender under the link serialization (+Inf while upstream dates settle).
func (r *run) arrival(x *xfer) float64 {
	if d, ok := r.hopEnd[hopKey{x.sd.TransferID(), len(x.sd.Hops) - 1}]; ok {
		return d
	}
	return math.Inf(1)
}

// deliveryDate returns the worst-case arrival date of a delivery under the
// failure set. For FT1 chains the receivers wait out the statically computed
// deadline of every non-delivering earlier rank (unless the failure is
// already detected), then the first surviving sender transmits; in the other
// modes the earliest surviving sender wins.
func (r *run) deliveryDate(d *delivery) float64 {
	if d.chain {
		eff := 0.0
		for _, x := range d.senders {
			if !r.senderDelivers(x) {
				if !r.detect {
					eff = math.Max(eff, x.sd.Deadline)
				}
				continue
			}
			if x.sd.Passive {
				// Failover activation at the statically computed deadline
				// (or once the backup has the value, whichever is later),
				// then the hops run back to back.
				prod := r.end[opProc{r.producerOf(x), x.sd.Proc}]
				return math.Max(eff, prod) + x.dur
			}
			return r.arrival(x)
		}
		return math.Inf(1)
	}
	best := math.Inf(1)
	for _, x := range d.senders {
		if !r.senderDelivers(x) {
			continue
		}
		if at := r.arrival(x); at < best {
			best = at
		}
	}
	return best
}

// dateEq reports near-equality of propagated dates, treating two +Inf
// estimates as equal.
func dateEq(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.IsInf(a, 1) && math.IsInf(b, 1)
	}
	return math.Abs(a-b) < 1e-9
}
