package certify

// cone is the impact cone of a set of processor failures: for each
// processor, the first static-sequence index whose execution status or
// completion date can change, and for each link, the first queue position
// whose hop dates can shift. Everything outside the cone provably keeps its
// failure-free fixpoint value, so an incremental evaluation only re-derives
// the cone (DESIGN.md §11).
//
// Dirtiness is suffix-closed by construction: a processor executes its
// static sequence in order, so once one slot's status or date can change,
// everything after it on that processor can too; likewise a link drains its
// static communication order front to back, so a skipped or re-dated entry
// can shift every later entry. A cone therefore needs only the first dirty
// index per processor and per link; a clean processor (link) carries its
// sequence (queue) length as the boundary.
type cone struct {
	procFrom []int32 // pid -> first dirty sequence index (len(seq) = clean)
	linkFrom []int32 // lid -> first dirty queue position (len(queue) = clean)
}

// newCleanCone returns the all-clean cone for the model.
func (m *model) newCleanCone() *cone {
	c := &cone{
		procFrom: make([]int32, len(m.procs)),
		linkFrom: make([]int32, len(m.cqueues)),
	}
	for pid := range c.procFrom {
		c.procFrom[pid] = int32(len(m.seq[pid]))
	}
	for lid := range c.linkFrom {
		c.linkFrom[lid] = int32(len(m.cqueues[lid]))
	}
	return c
}

// buildCone computes the impact cone of a single processor's failure by
// closing three unary propagation rules over the static structure:
//
//   - a dirty slot dirties every transfer its value feeds (the producer may
//     no longer execute, or may finish at a different date);
//   - a dirty transfer dirties its own queue positions (the entry may be
//     skipped or re-dated, shifting the link drain) and the consuming slots
//     on every receiving processor (availability, FT1 timeout waits, and
//     the delivery date all flow through deliveryDate);
//   - a dirty queue position dirties every later entry on the link (drain
//     shift), whose transfers are then dirty in turn.
//
// Because every rule maps one dirty entity to a fixed set of others, the
// closure of a union of seeds is the union of the closures: unionCone can
// min-merge per-processor cones exactly.
func (m *model) buildCone(pid int) *cone {
	c := m.newCleanCone()
	seen := make([]bool, len(m.cxfers))

	var markProc func(pid int32, idx int32)
	var markXfer func(xid int32)
	var markLink func(lid int32, pos int32)

	markProc = func(pid int32, idx int32) {
		prev := c.procFrom[pid]
		if idx >= prev {
			return
		}
		c.procFrom[pid] = idx
		seq := m.seq[pid]
		for i := idx; i < prev; i++ {
			for _, xid := range m.slotXfers[seq[i]] {
				markXfer(xid)
			}
		}
	}
	markXfer = func(xid int32) {
		if seen[xid] {
			return
		}
		seen[xid] = true
		for _, hid := range m.cxfers[xid].hops {
			markLink(m.hopLid[hid], m.hopQPos[hid])
		}
		for _, sid := range m.consSids[m.cxfers[xid].did] {
			markProc(m.slotProc[sid], m.slotPos[sid])
		}
	}
	markLink = func(lid int32, pos int32) {
		prev := c.linkFrom[lid]
		if pos >= prev {
			return
		}
		c.linkFrom[lid] = pos
		q := m.cqueues[lid]
		for j := pos; j < prev; j++ {
			markXfer(m.hopXfer[q[j]])
		}
	}

	// Seeds: the failed processor executes nothing, and every transfer it
	// sources or store-and-forwards dies with it.
	markProc(int32(pid), 0)
	for _, xid := range m.viaXfers[pid] {
		markXfer(xid)
	}
	return c
}

// unionCone merges the precomputed cones of the failed processors by
// element-wise min. The closure rules are unary, so the union of the closed
// per-processor cones is exactly the closed cone of the union — no joint
// re-closure is needed.
func (r *run) unionCone() *cone {
	m := r.m
	u := m.newCleanCone()
	for pid, failed := range r.byPid {
		if !failed {
			continue
		}
		c := m.cones[pid]
		for i, f := range c.procFrom {
			if f < u.procFrom[i] {
				u.procFrom[i] = f
			}
		}
		for i, f := range c.linkFrom {
			if f < u.linkFrom[i] {
				u.linkFrom[i] = f
			}
		}
	}
	return u
}

// evalIncr evaluates one failure set starting from the cached failure-free
// fixpoint: the run is cloned from it, the dirty region of the failure
// set's impact cone is invalidated, and the same chaining and relaxation
// code as evalFull re-derives it — reads below the dirty boundaries see the
// cloned (final) failure-free values, so the result is bit-identical to the
// reference engine (see DESIGN.md §11 for the argument, the differential
// tests for the enforcement).
func (m *model) evalIncr(failed map[string]bool, detect bool) *run {
	m.ins.evals.Inc()
	m.ins.evalsIncr.Inc()
	r := m.newRun(failed, detect)
	ff := m.ff
	copy(r.cursor, ff.cursor)
	copy(r.executed, ff.executed)
	copy(r.end, ff.end)
	copy(r.hopEnd, ff.hopEnd)

	u := r.unionCone()
	conePids := make([]int32, 0, len(m.procs))
	coneLids := make([]int32, 0, len(m.cqueues))
	dirtySlots, dirtyHops := 0, 0
	for pid := range m.procs {
		from := u.procFrom[pid]
		if int(from) >= len(m.seq[pid]) {
			continue
		}
		conePids = append(conePids, int32(pid))
		// Invalidate the dirty executed suffix and reseed the cursor: a
		// processor that stalled before its cone even begins cannot get
		// further under more failures (availability only shrinks), so the
		// clean prefix — status and dates — stays exactly failure-free.
		seed := from
		if c := ff.cursor[pid]; c < seed {
			seed = c
		}
		for i := from; i < ff.cursor[pid]; i++ {
			r.executed[m.seq[pid][i]] = false
		}
		dirtySlots += int(ff.cursor[pid] - seed)
		r.cursor[pid] = seed
	}
	for lid := range m.cqueues {
		if int(u.linkFrom[lid]) >= len(m.cqueues[lid]) {
			continue
		}
		coneLids = append(coneLids, int32(lid))
		dirtyHops += len(m.cqueues[lid]) - int(u.linkFrom[lid])
	}
	m.ins.coneSlots.Add(int64(dirtySlots))
	m.ins.coneHops.Add(int64(dirtyHops))

	r.chain(conePids)
	r.finish()
	if r.completed {
		r.propagate(conePids, u.procFrom, coneLids, u.linkFrom)
	}
	return r
}
