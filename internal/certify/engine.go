package certify

import (
	"math"

	"ftsched/internal/graph"
)

// run is the outcome of evaluating one failure set: which replicas execute,
// the worst-case completion dates of the executed prefixes, and whether
// every output is still delivered. All state is dense (indexed by the
// model's compiled identifiers). A full evaluation derives everything from
// scratch; an incremental one clones the failure-free fixpoint and
// re-derives only the dirty region of the failure set's impact cone — both
// drive the same chaining and relaxation code, restricted to different
// scopes, so the derived values are bit-identical (DESIGN.md §11).
type run struct {
	m      *model
	failed map[string]bool // original failure set (witness, canonical key)
	byPid  []bool          // pid -> failed
	detect bool            // failures already detected (FT1 skips their timeouts)

	cursor   []int32   // pid -> executed prefix length of the static sequence
	executed []bool    // sid -> replica executes under the failure set
	end      []float64 // sid -> worst-case completion (valid iff executed)
	hopEnd   []float64 // hid -> worst-case hop end (valid iff the sender delivers)

	completed bool
	missing   []string // undelivered outputs, in graph order
	resp      float64  // worst-case response-time bound (max over outputs)
}

// newRun allocates a zeroed run for a failure set.
func (m *model) newRun(failed map[string]bool, detect bool) *run {
	if failed == nil {
		failed = map[string]bool{} //ftlint:hotalloc-ok cold: failed is nil only for the failure-free baseline run, once per certification
	}
	r := &run{
		m: m, failed: failed, detect: detect,
		byPid:    make([]bool, len(m.procs)),
		cursor:   make([]int32, len(m.procs)),
		executed: make([]bool, len(m.slotName)),
		end:      make([]float64, len(m.slotName)),
		hopEnd:   make([]float64, len(m.hopXfer)),
	}
	for _, p := range sortedKeys(failed) {
		if pid, ok := m.pidOf[p]; ok {
			r.byPid[pid] = true
		}
	}
	return r
}

// evalFull computes the least fixed point of "replica executes" under the
// failure set from scratch — the static mirror of the simulator's
// semantics: a processor executes its static sequence in order, an
// operation starts once every strict input is available locally, and a
// delivery provides a value when some sender with a surviving route and a
// computing producer exists (first rank for FT1 chains, any sender
// otherwise). When every output survives, worst-case dates are then
// propagated over the executed instances. This is the reference engine;
// evalIncr must match it bit-for-bit (enforced by the differential tests).
func (m *model) evalFull(failed map[string]bool, detect bool) *run {
	m.ins.evals.Inc()
	m.ins.evalsFull.Inc()
	r := m.newRun(failed, detect)
	r.chain(m.allPids)
	r.finish()
	if r.completed {
		r.propagate(m.allPids, m.zerosP, m.allLids, m.zerosL)
	}
	return r
}

// chain runs phase 1, reachability: round-based forward chaining over the
// given processors; each round advances every alive cursor as far as its
// head inputs allow, until no processor can advance (the rest is blocked
// forever, exactly as a simulator iteration reaches quiescence). Cursors
// must be pre-seeded by the caller.
func (r *run) chain(pids []int32) {
	for progress := true; progress; { //ftlint:allow-nopoll bounded: every round that reports progress executes at least one slot, so rounds <= total slots
		r.m.ins.rounds.Inc()
		progress = false
		for _, pid := range pids {
			if r.byPid[pid] {
				continue
			}
			seq := r.m.seq[pid]
			for int(r.cursor[pid]) < len(seq) { //ftlint:allow-nopoll bounded: the cursor strictly advances, so trips <= len(seq)
				sid := seq[r.cursor[pid]]
				if !r.inputsAvailable(sid) {
					break
				}
				r.executed[sid] = true
				r.cursor[pid]++
				progress = true
			}
		}
	}
}

// finish runs the output check closing phase 1.
func (r *run) finish() {
	r.completed = true
	for _, out := range r.m.outs {
		alive := false
		for _, sid := range out.sids {
			if r.executed[sid] {
				alive = true
				break
			}
		}
		if !alive {
			r.completed = false
			r.missing = append(r.missing, out.op)
		}
	}
}

// inputsAvailable reports whether every strict input of the slot is
// available on its processor under the failure set, given the currently
// executed instances.
func (r *run) inputsAvailable(sid int32) bool {
	for i := range r.m.slotIn[sid] {
		in := &r.m.slotIn[sid][i]
		if in.localSid >= 0 && r.executed[in.localSid] {
			continue
		}
		if !r.anySenderDelivers(in.delivs) {
			return false
		}
	}
	return true
}

// anySenderDelivers reports whether any sender of any of the deliveries
// gets its value through.
func (r *run) anySenderDelivers(dids []int32) bool {
	for _, did := range dids {
		for _, xid := range r.m.cdelivs[did].senders {
			if r.delivers(xid) {
				return true
			}
		}
	}
	return false
}

// delivers reports whether a sender's value gets through: its source and
// every store-and-forward processor on its route survive, and its producing
// replica executes.
func (r *run) delivers(xid int32) bool {
	x := &r.m.cxfers[xid]
	if x.prodSid < 0 || r.byPid[x.srcPid] || !r.executed[x.prodSid] {
		return false
	}
	for _, f := range x.fwd {
		if r.byPid[f] {
			return false
		}
	}
	return true
}

// propagate runs phase 2, worst-case dates, over the given scope: the
// monotone date equations are iterated from +Inf downward until they
// stabilize, relaxing each link's queue from fromL[lid] and each alive
// processor's executed prefix from fromP[pid]. The full engine passes the
// whole schedule with zero boundaries; the incremental engine passes the
// failure set's impact cone, with the clean prefixes already carrying their
// (final) failure-free dates. An FT1 failover transfer activates at the
// statically computed deadline of the ranks it replaces and runs its hops
// back to back; the link time of a reactivated transfer is not charged to
// the queued entries (the receivers of a failover are idle waiting for it),
// the one approximation of the analysis.
func (r *run) propagate(pids []int32, fromP []int32, lids []int32, fromL []int32) {
	m := r.m
	// Registration: every date derived in this scope starts at +Inf.
	n := 0
	for _, pid := range pids {
		if r.byPid[pid] {
			continue
		}
		seq := m.seq[pid]
		for i := fromP[pid]; i < r.cursor[pid]; i++ {
			r.end[seq[i]] = math.Inf(1)
			n++
		}
	}
	nq := 0
	for _, lid := range lids {
		q := m.cqueues[lid]
		for _, hid := range q[fromL[lid]:] {
			if r.delivers(m.hopXfer[hid]) {
				r.hopEnd[hid] = math.Inf(1)
			}
			nq++
		}
	}
	n += nq
	for round := 0; round <= n+1; round++ {
		m.ins.rounds.Inc()
		changed := false
		for _, lid := range lids {
			from := fromL[lid]
			free := 0.0
			if from > 0 {
				free = m.freeAfter[lid][from]
			}
			if r.relaxLink(lid, from, free) {
				changed = true
			}
		}
		for _, pid := range pids {
			if r.byPid[pid] {
				continue
			}
			from := fromP[pid]
			if from >= r.cursor[pid] {
				continue
			}
			t := 0.0
			if from > 0 {
				// The preceding slot is clean and, since the cursor got past
				// it, executed; its failure-free date is final.
				t = r.end[m.seq[pid][from-1]]
			}
			if r.relaxProc(pid, from, t) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	r.computeResp()
}

// relaxLink recomputes the hop-end dates of a link's queue from position
// `from`, seeding the link-drain date with `free`. Transmitting hops
// execute in the link's static communication order, each waiting for its
// data and for the link to drain the earlier transmitting entries (the
// simulator's queue discipline). Returns whether any date moved.
func (r *run) relaxLink(lid int32, from int32, free float64) bool {
	m := r.m
	changed := false
	for _, hid := range m.cqueues[lid][from:] {
		xid := m.hopXfer[hid]
		if !r.delivers(xid) {
			continue // never transmits: the queue skips it
		}
		ready := math.Inf(1)
		switch prev := m.hopPrev[hid]; prev {
		case -1:
			ready = 0
			if sid := m.cxfers[xid].prodSid; r.executed[sid] {
				ready = r.end[sid]
			}
		case -2:
			// behind a passive hop: never queue-fed
		default:
			ready = r.hopEnd[prev]
		}
		end := math.Max(ready, free) + m.hopDur[hid]
		if !dateEq(end, r.hopEnd[hid]) {
			r.hopEnd[hid] = end
			changed = true
		}
		free = end
	}
	return changed
}

// relaxProc recomputes the completion dates of a processor's executed slots
// in [from, cursor), seeding the processor-busy date with t (the completion
// of the preceding slot). An operation starts after its predecessor on the
// processor and after each input's worst-case arrival. Returns whether any
// date moved.
func (r *run) relaxProc(pid int32, from int32, t float64) bool {
	m := r.m
	changed := false
	seq := m.seq[pid]
	for i := from; i < r.cursor[pid]; i++ {
		sid := seq[i]
		start := t
		for j := range m.slotIn[sid] {
			if at := r.availDate(&m.slotIn[sid][j]); at > start {
				start = at
			}
		}
		end := start + m.slotDur[sid]
		if !dateEq(end, r.end[sid]) {
			r.end[sid] = end
			changed = true
		}
		t = end
	}
	return changed
}

// availDate returns the worst-case date an input's value is available
// (+Inf while upstream dates are still settling).
func (r *run) availDate(in *cinput) float64 {
	best := math.Inf(1)
	if in.localSid >= 0 && r.executed[in.localSid] {
		best = r.end[in.localSid]
	}
	for _, did := range in.delivs {
		if at := r.deliveryDate(did); at < best {
			best = at
		}
	}
	return best
}

// deliveryDate returns the worst-case arrival date of a delivery under the
// failure set. For FT1 chains the receivers wait out the statically
// computed deadline of every non-delivering earlier rank (unless the
// failure is already detected), then the first surviving sender transmits;
// in the other modes the earliest surviving sender wins.
func (r *run) deliveryDate(did int32) float64 {
	m := r.m
	d := &m.cdelivs[did]
	if d.chain {
		eff := 0.0
		for _, xid := range d.senders {
			x := &m.cxfers[xid]
			if !r.delivers(xid) {
				if !r.detect {
					eff = math.Max(eff, x.deadline)
				}
				continue
			}
			if x.passive {
				// Failover activation at the statically computed deadline
				// (or once the backup has the value, whichever is later),
				// then the hops run back to back.
				prod := 0.0
				if r.executed[x.prodSid] {
					prod = r.end[x.prodSid]
				}
				return math.Max(eff, prod) + x.dur
			}
			return r.arrival(x)
		}
		return math.Inf(1)
	}
	best := math.Inf(1)
	for _, xid := range d.senders {
		if !r.delivers(xid) {
			continue
		}
		if at := r.arrival(&m.cxfers[xid]); at < best {
			best = at
		}
	}
	return best
}

// arrival returns the worst-case final-hop arrival of a delivering active
// sender under the link serialization (+Inf while upstream dates settle).
func (r *run) arrival(x *cxfer) float64 {
	if x.last < 0 {
		return math.Inf(1)
	}
	return r.hopEnd[x.last]
}

// computeResp derives the worst-case response-time bound: the max over
// outputs of the best surviving replica's completion date.
func (r *run) computeResp() {
	r.resp = 0
	for _, out := range r.m.outs {
		best := math.Inf(1)
		for _, sid := range out.sids {
			if r.executed[sid] && r.end[sid] < best {
				best = r.end[sid]
			}
		}
		if best > r.resp {
			r.resp = best
		}
	}
}

// Name-keyed views used by the witness builder and the consistency check.

// isExecutedName reports whether op's replica on proc executed.
func (r *run) isExecutedName(op, proc string) bool {
	if sid, ok := r.m.slotSid[opProc{op, proc}]; ok {
		return r.executed[sid]
	}
	return false
}

// cursorName returns proc's executed prefix length.
func (r *run) cursorName(proc string) int {
	if pid, ok := r.m.pidOf[proc]; ok {
		return int(r.cursor[pid])
	}
	return 0
}

// edgeAvailableName reports whether e's value reaches proc: a local replica
// of the producer executes, or some delivery targeting proc has a surviving
// sender whose producer executes.
func (r *run) edgeAvailableName(e graph.EdgeKey, proc string) bool {
	if r.isExecutedName(e.Src, proc) {
		return true
	}
	for _, d := range r.m.byDst[edgeProc{edge: e, proc: proc}] {
		for _, x := range d.senders {
			if r.delivers(x.id) {
				return true
			}
		}
	}
	return false
}
