package spec

import (
	"fmt"
	"strings"

	"ftsched/internal/graph"
)

// ParseExecTable fills execution durations from the tab- or space-separated
// tabular format of the paper's Section 5.4 (the inverse of ExecTable): a
// header row listing operation names after any first label, then one row
// per processor. "inf" (or "∞") marks forbidden placements.
//
//	op/proc  I    A  B    C  D  E  O
//	P1       1    2  3    2  3  1  1.5
//	P2       1    2  1.5  3  1  1  1.5
//	P3       inf  2  1.5  1  1  1  inf
func (s *Spec) ParseExecTable(text string) error {
	rows, header, err := parseRows(text)
	if err != nil {
		return fmt.Errorf("spec: exec table: %w", err)
	}
	ops := header[1:]
	for _, row := range rows {
		proc := row[0]
		if len(row) != len(ops)+1 {
			return fmt.Errorf("spec: exec table: row for %q has %d entries, want %d", proc, len(row)-1, len(ops))
		}
		for i, tok := range row[1:] {
			d, err := parseDuration(tok)
			if err != nil {
				return fmt.Errorf("spec: exec table: (%s, %s): %w", ops[i], proc, err)
			}
			if err := s.SetExec(ops[i], proc, d); err != nil {
				return err
			}
		}
	}
	return nil
}

// ParseCommTable fills communication durations from the tabular format of
// CommTable: a header row listing dependencies as "src->dst", then one row
// per link. "-" skips an entry.
//
//	dep/link  I->A  A->B  A->C
//	bus       1.25  0.5   0.5
func (s *Spec) ParseCommTable(text string) error {
	rows, header, err := parseRows(text)
	if err != nil {
		return fmt.Errorf("spec: comm table: %w", err)
	}
	edges := make([]graph.EdgeKey, 0, len(header)-1)
	for _, h := range header[1:] {
		parts := strings.Split(h, "->")
		if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
			return fmt.Errorf("spec: comm table: bad dependency %q (want src->dst)", h)
		}
		edges = append(edges, graph.EdgeKey{Src: parts[0], Dst: parts[1]})
	}
	for _, row := range rows {
		link := row[0]
		if len(row) != len(edges)+1 {
			return fmt.Errorf("spec: comm table: row for %q has %d entries, want %d", link, len(row)-1, len(edges))
		}
		for i, tok := range row[1:] {
			if tok == "-" {
				continue
			}
			d, err := parseDuration(tok)
			if err != nil {
				return fmt.Errorf("spec: comm table: (%s, %s): %w", edges[i], link, err)
			}
			if err := s.SetComm(edges[i], link, d); err != nil {
				return err
			}
		}
	}
	return nil
}

// parseRows splits the table into a header and data rows, tolerating both
// tabs and runs of spaces as separators and skipping blank lines.
func parseRows(text string) (rows [][]string, header []string, err error) {
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if header == nil {
			if len(fields) < 2 {
				return nil, nil, fmt.Errorf("header %q needs at least one column", line)
			}
			header = fields
			continue
		}
		rows = append(rows, fields)
	}
	if header == nil {
		return nil, nil, fmt.Errorf("empty table")
	}
	if len(rows) == 0 {
		return nil, nil, fmt.Errorf("no data rows")
	}
	return rows, header, nil
}
