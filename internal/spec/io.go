package spec

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"ftsched/internal/graph"
)

// jsonSpec is the serialized form of a Spec. Inf is encoded as the string
// "inf" because JSON has no infinity literal.
type jsonSpec struct {
	Exec []jsonExec `json:"exec"`
	Comm []jsonComm `json:"comm"`
}

type jsonExec struct {
	Op       string      `json:"op"`
	Proc     string      `json:"proc"`
	Duration json.Number `json:"duration"`
}

type jsonComm struct {
	Src      string  `json:"src"`
	Dst      string  `json:"dst"`
	Link     string  `json:"link"`
	Duration float64 `json:"duration"`
}

// MarshalJSON encodes the constraints with deterministic ordering.
func (s *Spec) MarshalJSON() ([]byte, error) {
	var js jsonSpec
	ops := make([]string, 0, len(s.exec))
	for op := range s.exec {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		procs := make([]string, 0, len(s.exec[op]))
		for p := range s.exec[op] {
			procs = append(procs, p)
		}
		sort.Strings(procs)
		for _, p := range procs {
			d := s.exec[op][p]
			num := json.Number("0")
			if math.IsInf(d, 1) {
				num = json.Number(`1e999`) // decodes back to +Inf sentinel below
			} else {
				num = json.Number(fmt.Sprintf("%g", d))
			}
			js.Exec = append(js.Exec, jsonExec{Op: op, Proc: p, Duration: num})
		}
	}
	edges := make([]graph.EdgeKey, 0, len(s.comm))
	for e := range s.comm {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Src != edges[j].Src {
			return edges[i].Src < edges[j].Src
		}
		return edges[i].Dst < edges[j].Dst
	})
	for _, e := range edges {
		links := make([]string, 0, len(s.comm[e]))
		for l := range s.comm[e] {
			links = append(links, l)
		}
		sort.Strings(links)
		for _, l := range links {
			js.Comm = append(js.Comm, jsonComm{Src: e.Src, Dst: e.Dst, Link: l, Duration: s.comm[e][l]})
		}
	}
	return json.Marshal(js)
}

// UnmarshalJSON decodes constraints previously encoded by MarshalJSON. The
// duration "inf" (any case) or a number overflowing float64 is read as Inf.
func (s *Spec) UnmarshalJSON(data []byte) error {
	var js jsonSpec
	if err := json.Unmarshal(data, &js); err != nil {
		return fmt.Errorf("spec: decode: %w", err)
	}
	ns := New()
	for _, e := range js.Exec {
		d, err := parseDuration(string(e.Duration))
		if err != nil {
			return fmt.Errorf("spec: decode exec(%s,%s): %w", e.Op, e.Proc, err)
		}
		if err := ns.SetExec(e.Op, e.Proc, d); err != nil {
			return err
		}
	}
	for _, c := range js.Comm {
		if err := ns.SetComm(graph.EdgeKey{Src: c.Src, Dst: c.Dst}, c.Link, c.Duration); err != nil {
			return err
		}
	}
	*s = *ns
	return nil
}

func parseDuration(tok string) (float64, error) {
	switch strings.ToLower(strings.TrimSpace(tok)) {
	case "inf", "+inf", "infinity", "∞":
		return Inf, nil
	}
	d, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
	if err != nil {
		// Overflow parses to ±Inf with ErrRange; treat +Inf as the sentinel.
		if errors.Is(err, strconv.ErrRange) && math.IsInf(d, 1) {
			return Inf, nil
		}
		return 0, fmt.Errorf("bad duration %q", tok)
	}
	if math.IsInf(d, 1) {
		return Inf, nil
	}
	return d, nil
}

// ExecTable renders the execution-time table in the paper's layout: one row
// per processor, one column per operation (given in display order).
func (s *Spec) ExecTable(ops, procs []string) string {
	var b strings.Builder
	b.WriteString("op/proc")
	for _, op := range ops {
		fmt.Fprintf(&b, "\t%s", op)
	}
	b.WriteByte('\n')
	for _, p := range procs {
		b.WriteString(p)
		for _, op := range ops {
			fmt.Fprintf(&b, "\t%s", formatDuration(s.Exec(op, p)))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CommTable renders the communication-time table: one row per link, one
// column per dependency.
func (s *Spec) CommTable(edges []graph.EdgeKey, links []string) string {
	var b strings.Builder
	b.WriteString("dep/link")
	for _, e := range edges {
		fmt.Fprintf(&b, "\t%s", e)
	}
	b.WriteByte('\n')
	for _, l := range links {
		b.WriteString(l)
		for _, e := range edges {
			d, err := s.Comm(e, l)
			if err != nil {
				b.WriteString("\t-")
				continue
			}
			fmt.Fprintf(&b, "\t%s", formatDuration(d))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func formatDuration(d float64) string {
	if math.IsInf(d, 1) {
		return "inf"
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", d), "0"), ".")
}
