package spec

import "testing"

// FuzzSpecJSON checks that arbitrary input never panics the decoder and
// that accepted inputs re-encode and re-decode cleanly.
func FuzzSpecJSON(f *testing.F) {
	f.Add([]byte(`{"exec":[{"op":"A","proc":"P1","duration":1.5}],"comm":[{"src":"A","dst":"B","link":"L","duration":0.5}]}`))
	f.Add([]byte(`{"exec":[{"op":"A","proc":"P1","duration":1e999}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Spec
		if err := s.UnmarshalJSON(data); err != nil {
			return // rejected input is fine
		}
		out, err := s.MarshalJSON()
		if err != nil {
			t.Fatalf("accepted input failed to re-encode: %v", err)
		}
		var back Spec
		if err := back.UnmarshalJSON(out); err != nil {
			t.Fatalf("re-encoded output failed to decode: %v\n%s", err, out)
		}
	})
}

// FuzzExecTable checks the text-table parser never panics.
func FuzzExecTable(f *testing.F) {
	f.Add("op/proc A B\nP1 1 2\n")
	f.Add("op/proc A\nP1 inf\n")
	f.Add("")
	f.Add("x")
	f.Fuzz(func(t *testing.T, text string) {
		s := New()
		_ = s.ParseExecTable(text)
	})
}

// FuzzCommTable checks the comm-table parser never panics.
func FuzzCommTable(f *testing.F) {
	f.Add("dep/link A->B\nL 0.5\n")
	f.Add("dep/link A->B C->D\nL 1 -\n")
	f.Add("dep/link ->\nL 1\n")
	f.Fuzz(func(t *testing.T, text string) {
		s := New()
		_ = s.ParseCommTable(text)
	})
}
