package spec

import (
	"math"
	"strings"
	"testing"

	"ftsched/internal/graph"
)

const paperExecTable = `
op/proc  I    A  B    C  D  E  O
P1       1    2  3    2  3  1  1.5
P2       1    2  1.5  3  1  1  1.5
P3       inf  2  1.5  1  1  1  inf
`

const paperCommTable = `
dep/link  I->A  A->B  A->C  A->D  B->E  C->E  D->E  E->O
bus       1.25  0.5   0.5   0.5   0.6   0.8   1     1
`

func TestParseExecTable(t *testing.T) {
	s := New()
	if err := s.ParseExecTable(paperExecTable); err != nil {
		t.Fatal(err)
	}
	if got := s.Exec("B", "P2"); got != 1.5 {
		t.Errorf("exec(B,P2) = %v", got)
	}
	if got := s.Exec("I", "P3"); !math.IsInf(got, 1) {
		t.Errorf("exec(I,P3) = %v, want Inf", got)
	}
	if got := s.Exec("O", "P1"); got != 1.5 {
		t.Errorf("exec(O,P1) = %v", got)
	}
}

func TestParseCommTable(t *testing.T) {
	s := New()
	if err := s.ParseCommTable(paperCommTable); err != nil {
		t.Fatal(err)
	}
	d, err := s.Comm(graph.EdgeKey{Src: "I", Dst: "A"}, "bus")
	if err != nil || d != 1.25 {
		t.Errorf("comm(I->A) = %v, %v", d, err)
	}
	d, err = s.Comm(graph.EdgeKey{Src: "E", Dst: "O"}, "bus")
	if err != nil || d != 1 {
		t.Errorf("comm(E->O) = %v, %v", d, err)
	}
}

func TestParseCommTableSkipsDash(t *testing.T) {
	s := New()
	table := "dep/link  A->B  C->D\nL1  0.5  -\n"
	if err := s.ParseCommTable(table); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Comm(graph.EdgeKey{Src: "C", Dst: "D"}, "L1"); err == nil {
		t.Error("dashed entry must stay unset")
	}
}

func TestParseTableErrors(t *testing.T) {
	s := New()
	cases := []struct {
		name  string
		parse func(string) error
		text  string
	}{
		{"empty exec", s.ParseExecTable, ""},
		{"header only", s.ParseExecTable, "op/proc A\n"},
		{"short row", s.ParseExecTable, "op/proc A B\nP1 1\n"},
		{"bad duration", s.ParseExecTable, "op/proc A\nP1 soon\n"},
		{"negative", s.ParseExecTable, "op/proc A\nP1 -1\n"},
		{"bad dep", s.ParseCommTable, "dep/link AB\nL 1\n"},
		{"short comm row", s.ParseCommTable, "dep/link A->B C->D\nL 1\n"},
		{"bad comm duration", s.ParseCommTable, "dep/link A->B\nL soon\n"},
		{"one-column header", s.ParseExecTable, "op/proc\nP1\n"},
	}
	for _, c := range cases {
		if err := c.parse(c.text); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestTableRoundTrip(t *testing.T) {
	// Print the paper spec with ExecTable/CommTable, re-parse it, and check
	// equality on a few entries.
	s := New()
	if err := s.ParseExecTable(paperExecTable); err != nil {
		t.Fatal(err)
	}
	if err := s.ParseCommTable(paperCommTable); err != nil {
		t.Fatal(err)
	}
	ops := []string{"I", "A", "B", "C", "D", "E", "O"}
	procs := []string{"P1", "P2", "P3"}
	printed := s.ExecTable(ops, procs)
	s2 := New()
	if err := s2.ParseExecTable(printed); err != nil {
		t.Fatalf("re-parse: %v\n%s", err, printed)
	}
	for _, op := range ops {
		for _, p := range procs {
			a, b := s.Exec(op, p), s2.Exec(op, p)
			if math.IsInf(a, 1) != math.IsInf(b, 1) || (!math.IsInf(a, 1) && a != b) {
				t.Errorf("round trip exec(%s,%s): %v vs %v", op, p, a, b)
			}
		}
	}
	if !strings.Contains(printed, "inf") {
		t.Error("printed table should show inf")
	}
}
