package spec

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"ftsched/internal/arch"
	"ftsched/internal/graph"
)

func edge(src, dst string) graph.EdgeKey { return graph.EdgeKey{Src: src, Dst: dst} }

func smallGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("g")
	for _, n := range []string{"A", "B"} {
		if err := g.AddComp(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Connect("A", "B"); err != nil {
		t.Fatal(err)
	}
	return g
}

func smallArch(t *testing.T) *arch.Architecture {
	t.Helper()
	a := arch.New("a")
	_ = a.AddProcessor("P1")
	_ = a.AddProcessor("P2")
	if err := a.AddLink("L", "P1", "P2"); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSetExecAndLookup(t *testing.T) {
	s := New()
	if err := s.SetExec("A", "P1", 2.5); err != nil {
		t.Fatal(err)
	}
	if got := s.Exec("A", "P1"); got != 2.5 {
		t.Errorf("Exec = %v", got)
	}
	if got := s.Exec("A", "P2"); !math.IsInf(got, 1) {
		t.Errorf("missing entry should be Inf, got %v", got)
	}
	if got := s.Exec("Z", "P1"); !math.IsInf(got, 1) {
		t.Errorf("missing op should be Inf, got %v", got)
	}
	if err := s.SetExec("A", "P2", Inf); err != nil {
		t.Fatalf("explicit Inf must be allowed: %v", err)
	}
	if s.CanRun("A", "P2") {
		t.Error("CanRun should be false for Inf")
	}
	if !s.CanRun("A", "P1") {
		t.Error("CanRun should be true for finite duration")
	}
}

func TestSetExecRejectsBadValues(t *testing.T) {
	s := New()
	if err := s.SetExec("A", "P1", -1); err == nil {
		t.Error("negative duration must be rejected")
	}
	if err := s.SetExec("A", "P1", math.NaN()); err == nil {
		t.Error("NaN duration must be rejected")
	}
}

func TestSetCommAndLookup(t *testing.T) {
	s := New()
	e := edge("A", "B")
	if err := s.SetComm(e, "L", 0.5); err != nil {
		t.Fatal(err)
	}
	d, err := s.Comm(e, "L")
	if err != nil || d != 0.5 {
		t.Errorf("Comm = %v, %v", d, err)
	}
	if _, err := s.Comm(e, "L2"); err == nil {
		t.Error("missing link must error")
	}
	if _, err := s.Comm(edge("X", "Y"), "L"); err == nil {
		t.Error("missing edge must error")
	}
	if err := s.SetComm(e, "L", Inf); err == nil {
		t.Error("infinite comm must be rejected")
	}
	if err := s.SetComm(e, "L", -0.5); err == nil {
		t.Error("negative comm must be rejected")
	}
}

func TestRouteComm(t *testing.T) {
	s := New()
	e := edge("A", "B")
	_ = s.SetComm(e, "L1", 1.0)
	_ = s.SetComm(e, "L2", 0.5)
	r := arch.Route{{Link: "L1", To: "P2"}, {Link: "L2", To: "P3"}}
	d, err := s.RouteComm(e, r)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1.5 {
		t.Errorf("RouteComm = %v, want 1.5", d)
	}
	d, err = s.RouteComm(e, arch.Route{})
	if err != nil || d != 0 {
		t.Errorf("empty route = %v, %v", d, err)
	}
	if _, err := s.RouteComm(e, arch.Route{{Link: "LX", To: "P9"}}); err == nil {
		t.Error("unknown link on route must error")
	}
}

func TestAllowedProcs(t *testing.T) {
	s := New()
	_ = s.SetExec("A", "P2", 1)
	_ = s.SetExec("A", "P1", 2)
	_ = s.SetExec("A", "P3", Inf)
	got := s.AllowedProcs("A")
	if len(got) != 2 || got[0] != "P1" || got[1] != "P2" {
		t.Errorf("AllowedProcs = %v", got)
	}
	if procs := s.AllowedProcs("missing"); len(procs) != 0 {
		t.Errorf("AllowedProcs(missing) = %v", procs)
	}
}

func TestAverages(t *testing.T) {
	s := New()
	_ = s.SetExec("A", "P1", 2)
	_ = s.SetExec("A", "P2", 4)
	_ = s.SetExec("A", "P3", Inf)
	if got := s.AvgExec("A"); got != 3 {
		t.Errorf("AvgExec = %v, want 3 (Inf excluded)", got)
	}
	if got := s.AvgExec("missing"); !math.IsInf(got, 1) {
		t.Errorf("AvgExec(missing) = %v, want Inf", got)
	}
	e := edge("A", "B")
	_ = s.SetComm(e, "L1", 1)
	_ = s.SetComm(e, "L2", 2)
	if got := s.AvgComm(e); got != 1.5 {
		t.Errorf("AvgComm = %v", got)
	}
	if got := s.AvgComm(edge("X", "Y")); got != 0 {
		t.Errorf("AvgComm(missing) = %v, want 0", got)
	}
}

func TestAvgCostAdapter(t *testing.T) {
	s := New()
	_ = s.SetExec("A", "P1", 2)
	_ = s.SetComm(edge("A", "B"), "L", 1)
	c := AvgCost{S: s}
	if c.OpCost("A") != 2 || c.EdgeCost(edge("A", "B")) != 1 {
		t.Error("AvgCost adapter")
	}
}

func validSpec(t *testing.T, g *graph.Graph, a *arch.Architecture) *Spec {
	t.Helper()
	s := New()
	for _, op := range g.OpNames() {
		for _, p := range a.ProcessorNames() {
			if err := s.SetExec(op, p, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, e := range g.Edges() {
		if err := s.SetCommUniform(a, e.Key(), 0.5); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestValidateOK(t *testing.T) {
	g, a := smallGraph(t), smallArch(t)
	s := validSpec(t, g, a)
	if err := s.Validate(g, a); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	g, a := smallGraph(t), smallArch(t)

	s := validSpec(t, g, a)
	_ = s.SetExec("ghost", "P1", 1)
	if err := s.Validate(g, a); err == nil || !strings.Contains(err.Error(), "unknown operation") {
		t.Errorf("want unknown-operation error, got %v", err)
	}

	s = validSpec(t, g, a)
	_ = s.SetExec("A", "PX", 1)
	if err := s.Validate(g, a); err == nil || !strings.Contains(err.Error(), "unknown processor") {
		t.Errorf("want unknown-processor error, got %v", err)
	}

	s = New()
	_ = s.SetExec("A", "P1", 1)
	// B has no allowed processor.
	_ = s.SetCommUniform(a, edge("A", "B"), 0.5)
	if err := s.Validate(g, a); err == nil || !strings.Contains(err.Error(), "no processor able") {
		t.Errorf("want no-processor error, got %v", err)
	}

	s = validSpec(t, g, a)
	_ = s.SetComm(edge("X", "Y"), "L", 1)
	if err := s.Validate(g, a); err == nil || !strings.Contains(err.Error(), "unknown dependency") {
		t.Errorf("want unknown-dependency error, got %v", err)
	}

	s = validSpec(t, g, a)
	_ = s.SetComm(edge("A", "B"), "LX", 1)
	if err := s.Validate(g, a); err == nil || !strings.Contains(err.Error(), "unknown link") {
		t.Errorf("want unknown-link error, got %v", err)
	}

	s = New()
	_ = s.SetExec("A", "P1", 1)
	_ = s.SetExec("B", "P1", 1)
	if err := s.Validate(g, a); err == nil || !strings.Contains(err.Error(), "no duration on link") {
		t.Errorf("want missing-comm error, got %v", err)
	}
}

func TestSetCommUniform(t *testing.T) {
	a := smallArch(t)
	s := New()
	e := edge("A", "B")
	if err := s.SetCommUniform(a, e, 0.7); err != nil {
		t.Fatal(err)
	}
	d, err := s.Comm(e, "L")
	if err != nil || d != 0.7 {
		t.Errorf("Comm = %v, %v", d, err)
	}
	if err := s.SetCommUniform(arch.New("empty"), e, 1); err == nil {
		t.Error("no-links architecture must error")
	}
}

func TestClone(t *testing.T) {
	s := New()
	_ = s.SetExec("A", "P1", 1)
	_ = s.SetComm(edge("A", "B"), "L", 2)
	c := s.Clone()
	_ = c.SetExec("A", "P1", 9)
	_ = c.SetComm(edge("A", "B"), "L", 9)
	if s.Exec("A", "P1") != 1 {
		t.Error("clone exec mutation leaked")
	}
	if d, _ := s.Comm(edge("A", "B"), "L"); d != 2 {
		t.Error("clone comm mutation leaked")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := New()
	_ = s.SetExec("A", "P1", 1.5)
	_ = s.SetExec("A", "P2", Inf)
	_ = s.SetExec("B", "P1", 3)
	_ = s.SetComm(edge("A", "B"), "L", 0.5)
	data, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, data)
	}
	if back.Exec("A", "P1") != 1.5 {
		t.Errorf("exec A/P1 = %v", back.Exec("A", "P1"))
	}
	if !math.IsInf(back.Exec("A", "P2"), 1) {
		t.Errorf("exec A/P2 = %v, want Inf", back.Exec("A", "P2"))
	}
	d, err := back.Comm(edge("A", "B"), "L")
	if err != nil || d != 0.5 {
		t.Errorf("comm = %v, %v", d, err)
	}
}

func TestJSONDecodeErrors(t *testing.T) {
	var s Spec
	if err := s.UnmarshalJSON([]byte(`nope`)); err == nil {
		t.Error("expected syntax error")
	}
	if err := s.UnmarshalJSON([]byte(`{"exec":[{"op":"A","proc":"P1","duration":-3}]}`)); err == nil {
		t.Error("expected negative-duration error")
	}
}

func TestParseDuration(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"inf", Inf}, {"Inf", Inf}, {"INFINITY", Inf}, {"∞", Inf},
		{"1.5", 1.5}, {"0", 0}, {"1e999", Inf},
	}
	for _, c := range cases {
		got, err := parseDuration(c.in)
		if err != nil {
			t.Errorf("parseDuration(%q): %v", c.in, err)
			continue
		}
		if math.IsInf(c.want, 1) != math.IsInf(got, 1) || (!math.IsInf(c.want, 1) && got != c.want) {
			t.Errorf("parseDuration(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if _, err := parseDuration("abc"); err == nil {
		t.Error("expected parse error")
	}
}

func TestTables(t *testing.T) {
	s := New()
	_ = s.SetExec("A", "P1", 1)
	_ = s.SetExec("A", "P2", Inf)
	_ = s.SetComm(edge("A", "B"), "L", 1.25)
	et := s.ExecTable([]string{"A"}, []string{"P1", "P2"})
	if !strings.Contains(et, "inf") || !strings.Contains(et, "P1\t1") {
		t.Errorf("ExecTable:\n%s", et)
	}
	ct := s.CommTable([]graph.EdgeKey{edge("A", "B"), edge("X", "Y")}, []string{"L"})
	if !strings.Contains(ct, "1.25") || !strings.Contains(ct, "-") {
		t.Errorf("CommTable:\n%s", ct)
	}
}

func TestQuickJSONRoundTripExec(t *testing.T) {
	f := func(d float64) bool {
		if math.IsNaN(d) || d < 0 || math.IsInf(d, 0) {
			return true // rejected inputs are out of scope
		}
		s := New()
		if err := s.SetExec("A", "P1", d); err != nil {
			return false
		}
		data, err := s.MarshalJSON()
		if err != nil {
			return false
		}
		var back Spec
		if err := back.UnmarshalJSON(data); err != nil {
			return false
		}
		// %g may round very long fractions; accept tiny relative error.
		got := back.Exec("A", "P1")
		if d == 0 {
			return got == 0
		}
		return math.Abs(got-d)/math.Max(d, 1) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
