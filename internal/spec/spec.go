// Package spec implements the AAA distribution constraints: the worst-case
// execution time of every (operation, processor) pair and the worst-case
// transfer time of every (data-dependency, link) pair, both in abstract time
// units (Section 5.4 of the paper).
//
// The value Inf means "this operation cannot execute on this processor"
// (typically an extio whose sensor/actuator is wired to specific processors).
package spec

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"ftsched/internal/arch"
	"ftsched/internal/graph"
)

// Inf marks an impossible placement in the execution-time table.
var Inf = math.Inf(1)

// Spec holds the distribution constraints for one (algorithm, architecture)
// pair. Create one with New and fill it with SetExec / SetComm.
type Spec struct {
	exec map[string]map[string]float64        // op -> proc -> duration
	comm map[graph.EdgeKey]map[string]float64 // edge -> link -> duration
}

// New returns an empty constraints table.
func New() *Spec {
	return &Spec{
		exec: make(map[string]map[string]float64),
		comm: make(map[graph.EdgeKey]map[string]float64),
	}
}

// SetExec records the execution duration of op on proc. Use Inf to forbid
// the placement. Durations must not be negative or NaN.
func (s *Spec) SetExec(op, proc string, d float64) error {
	if math.IsNaN(d) || d < 0 {
		return fmt.Errorf("spec: exec(%s, %s) = %v: duration must be >= 0", op, proc, d)
	}
	row, ok := s.exec[op]
	if !ok {
		row = make(map[string]float64)
		s.exec[op] = row
	}
	row[proc] = d
	return nil
}

// SetComm records the transfer duration of edge e over link. Communication
// durations must be finite and non-negative (a link either carries the
// dependency or is simply never on its route).
func (s *Spec) SetComm(e graph.EdgeKey, link string, d float64) error {
	if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
		return fmt.Errorf("spec: comm(%s, %s) = %v: duration must be finite and >= 0", e, link, d)
	}
	row, ok := s.comm[e]
	if !ok {
		row = make(map[string]float64)
		s.comm[e] = row
	}
	row[link] = d
	return nil
}

// Exec returns the execution duration of op on proc; absent entries are Inf
// (placement forbidden), mirroring the paper's convention.
func (s *Spec) Exec(op, proc string) float64 {
	if row, ok := s.exec[op]; ok {
		if d, ok := row[proc]; ok {
			return d
		}
	}
	return Inf
}

// Comm returns the transfer duration of edge e over link, or an error if the
// pair was never specified (unlike Exec there is no meaningful default).
func (s *Spec) Comm(e graph.EdgeKey, link string) (float64, error) {
	if row, ok := s.comm[e]; ok {
		if d, ok := row[link]; ok {
			return d, nil
		}
	}
	return 0, fmt.Errorf("spec: no communication duration for %s over link %q", e, link)
}

// RouteComm returns the total transfer duration of edge e over the route r
// (the sum of per-hop durations, since each hop is a store-and-forward
// transfer executed by the communication units along the path).
func (s *Spec) RouteComm(e graph.EdgeKey, r arch.Route) (float64, error) {
	total := 0.0
	for _, h := range r {
		d, err := s.Comm(e, h.Link)
		if err != nil {
			return 0, err
		}
		total += d
	}
	return total, nil
}

// AllowedProcs returns, sorted by name, the processors on which op may
// execute (finite duration).
func (s *Spec) AllowedProcs(op string) []string {
	var out []string
	for p, d := range s.exec[op] {
		if !math.IsInf(d, 1) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// CanRun reports whether op may execute on proc.
func (s *Spec) CanRun(op, proc string) bool { return !math.IsInf(s.Exec(op, proc), 1) }

// AvgExec returns the mean execution duration of op over its allowed
// processors, used by the static phase of the schedule-pressure computation
// on heterogeneous architectures. It returns Inf if no processor can run op.
func (s *Spec) AvgExec(op string) float64 {
	sum, n := 0.0, 0
	for _, d := range s.exec[op] {
		if !math.IsInf(d, 1) {
			sum += d
			n++
		}
	}
	if n == 0 {
		return Inf
	}
	return sum / float64(n)
}

// AvgComm returns the mean transfer duration of edge e over the links it was
// specified for, or 0 if none were specified (a purely local dependency).
func (s *Spec) AvgComm(e graph.EdgeKey) float64 {
	row := s.comm[e]
	if len(row) == 0 {
		return 0
	}
	sum := 0.0
	for _, d := range row {
		sum += d
	}
	return sum / float64(len(row))
}

// Validate checks the constraints against an algorithm and an architecture:
// every operation must have at least one allowed processor, every referenced
// processor/link must exist, and every (edge, link) pair must be specified
// so any route is costable.
func (s *Spec) Validate(g *graph.Graph, a *arch.Architecture) error {
	var errs []string
	for op, row := range s.exec {
		if !g.HasOp(op) {
			errs = append(errs, fmt.Sprintf("exec table references unknown operation %q", op))
		}
		for p := range row {
			if !a.HasProcessor(p) {
				errs = append(errs, fmt.Sprintf("exec table references unknown processor %q (op %q)", p, op))
			}
		}
	}
	for _, op := range g.OpNames() {
		if len(s.AllowedProcs(op)) == 0 {
			errs = append(errs, fmt.Sprintf("operation %q has no processor able to execute it", op))
		}
	}
	for e, row := range s.comm {
		if g.Edge(e) == nil {
			errs = append(errs, fmt.Sprintf("comm table references unknown dependency %s", e))
		}
		for l := range row {
			if a.Link(l) == nil {
				errs = append(errs, fmt.Sprintf("comm table references unknown link %q (dependency %s)", l, e))
			}
		}
	}
	for _, e := range g.Edges() {
		for _, l := range a.LinkNames() {
			if _, err := s.Comm(e.Key(), l); err != nil {
				errs = append(errs, fmt.Sprintf("dependency %s has no duration on link %q", e.Key(), l))
			}
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("spec: invalid constraints:\n  %s", strings.Join(errs, "\n  "))
	}
	return nil
}

// SetCommUniform assigns the same duration to edge e on every link of the
// architecture, the common case in the paper's examples.
func (s *Spec) SetCommUniform(a *arch.Architecture, e graph.EdgeKey, d float64) error {
	if a.NumLinks() == 0 {
		return errors.New("spec: architecture has no links")
	}
	for _, l := range a.LinkNames() {
		if err := s.SetComm(e, l, d); err != nil {
			return err
		}
	}
	return nil
}

// Clone returns a deep copy of the constraints.
func (s *Spec) Clone() *Spec {
	c := New()
	for op, row := range s.exec {
		nr := make(map[string]float64, len(row))
		for p, d := range row {
			nr[p] = d
		}
		c.exec[op] = nr
	}
	for e, row := range s.comm {
		nr := make(map[string]float64, len(row))
		for l, d := range row {
			nr[l] = d
		}
		c.comm[e] = nr
	}
	return c
}

// AvgCost adapts the spec to graph.CostFunc using averaged durations, the
// weights used to compute R and E(o) before scheduling starts.
type AvgCost struct {
	S *Spec
}

// OpCost implements graph.CostFunc.
func (c AvgCost) OpCost(op string) float64 { return c.S.AvgExec(op) }

// EdgeCost implements graph.CostFunc.
func (c AvgCost) EdgeCost(e graph.EdgeKey) float64 { return c.S.AvgComm(e) }

var _ graph.CostFunc = AvgCost{}
