package sched_test

import (
	"math/rand"
	"testing"

	"ftsched/internal/core"
	"ftsched/internal/workload"
)

// BenchmarkValidate measures repeated validation of a fault-tolerant
// schedule. Validate walks every processor and link several times through
// ProcSlots/LinkSlots/Transfers; the memoized sorted views keep those walks
// linear instead of re-sorting per call.
func BenchmarkValidate(b *testing.B) {
	in, err := workload.RandomInstance(rand.New(rand.NewSource(42)), 100, 8, true, 0.8)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.ScheduleFT1(in.Graph, in.Arch, in.Spec, 1, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := res.Schedule.Validate(in.Graph, in.Arch, in.Spec); err != nil {
			b.Fatal(err)
		}
	}
}
