package sched

import (
	"encoding/json"
	"fmt"

	"ftsched/internal/graph"
)

// jsonSchedule is the serialized form of a Schedule.
type jsonSchedule struct {
	Mode  string         `json:"mode"`
	K     int            `json:"k"`
	Ops   []jsonOpSlot   `json:"ops"`
	Comms []jsonCommSlot `json:"comms"`
}

type jsonOpSlot struct {
	Op      string  `json:"op"`
	Proc    string  `json:"proc"`
	Replica int     `json:"replica"`
	Start   float64 `json:"start"`
	End     float64 `json:"end"`
}

type jsonCommSlot struct {
	Src        string  `json:"src"`
	Dst        string  `json:"dst"`
	Link       string  `json:"link"`
	From       string  `json:"from"`
	To         string  `json:"to,omitempty"`
	SrcProc    string  `json:"srcProc"`
	DstProc    string  `json:"dstProc,omitempty"`
	SenderRank int     `json:"senderRank,omitempty"`
	TransferID int     `json:"transferId"`
	Hop        int     `json:"hop"`
	Start      float64 `json:"start"`
	End        float64 `json:"end"`
	Passive    bool    `json:"passive,omitempty"`
	Timeout    float64 `json:"timeout,omitempty"`
	Broadcast  bool    `json:"broadcast,omitempty"`
}

// MarshalJSON encodes the schedule with deterministic ordering.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	js := jsonSchedule{Mode: s.Mode.String(), K: s.K}
	for _, p := range s.Procs() {
		for _, sl := range s.ProcSlots(p) {
			js.Ops = append(js.Ops, jsonOpSlot{
				Op: sl.Op, Proc: sl.Proc, Replica: sl.Replica,
				Start: sl.Start, End: sl.End,
			})
		}
	}
	for _, l := range s.Links() {
		for _, c := range s.LinkSlots(l) {
			js.Comms = append(js.Comms, jsonCommSlot{
				Src: c.Edge.Src, Dst: c.Edge.Dst, Link: c.Link,
				From: c.From, To: c.To, SrcProc: c.SrcProc, DstProc: c.DstProc,
				SenderRank: c.SenderRank, TransferID: c.TransferID, Hop: c.Hop,
				Start: c.Start, End: c.End,
				Passive: c.Passive, Timeout: c.Timeout, Broadcast: c.Broadcast,
			})
		}
	}
	return json.Marshal(js)
}

// UnmarshalJSON decodes a schedule previously encoded by MarshalJSON.
func (s *Schedule) UnmarshalJSON(data []byte) error {
	var js jsonSchedule
	if err := json.Unmarshal(data, &js); err != nil {
		return fmt.Errorf("sched: decode: %w", err)
	}
	var mode Mode
	switch js.Mode {
	case "basic":
		mode = ModeBasic
	case "ft1":
		mode = ModeFT1
	case "ft2":
		mode = ModeFT2
	default:
		return fmt.Errorf("sched: decode: unknown mode %q", js.Mode)
	}
	ns := New(mode, js.K)
	maxTransfer := -1
	for _, o := range js.Ops {
		ns.AddOpSlot(OpSlot{Op: o.Op, Proc: o.Proc, Replica: o.Replica, Start: o.Start, End: o.End})
	}
	for _, c := range js.Comms {
		ns.AddCommSlot(CommSlot{
			Edge: graph.EdgeKey{Src: c.Src, Dst: c.Dst}, Link: c.Link,
			From: c.From, To: c.To, SrcProc: c.SrcProc, DstProc: c.DstProc,
			SenderRank: c.SenderRank, TransferID: c.TransferID, Hop: c.Hop,
			Start: c.Start, End: c.End,
			Passive: c.Passive, Timeout: c.Timeout, Broadcast: c.Broadcast,
		})
		if c.TransferID > maxTransfer {
			maxTransfer = c.TransferID
		}
	}
	ns.nextTransfer = maxTransfer + 1
	*s = *ns
	return nil
}
