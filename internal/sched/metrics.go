package sched

// Metrics summarizes a schedule for experiment tables.
type Metrics struct {
	// Makespan is the failure-free completion date.
	Makespan float64
	// OpSlots counts the scheduled operation replicas.
	OpSlots int
	// DistinctOps counts the scheduled operations.
	DistinctOps int
	// ReplicationFactor is OpSlots / DistinctOps (1.0 for basic schedules,
	// up to K+1 for fault-tolerant ones).
	ReplicationFactor float64
	// ActiveComms and PassiveComms count transfer hops by kind.
	ActiveComms, PassiveComms int
	// TotalCommTime is the summed duration of active hops.
	TotalCommTime float64
	// MeanUtilization averages busy-time/makespan over the processors that
	// hold at least one slot.
	MeanUtilization float64
	// MinPeriod is the largest per-resource busy time (computation per
	// processor, active communication per link): a lower bound on the
	// iteration period if successive iterations were pipelined. The
	// executive of the paper runs iterations back to back, so its period is
	// the makespan; MinPeriod shows the headroom pipelining could recover.
	MinPeriod float64
}

// ComputeMetrics gathers the schedule's summary quantities.
func (s *Schedule) ComputeMetrics() Metrics {
	m := Metrics{
		Makespan:      s.Makespan(),
		OpSlots:       s.NumOpSlots(),
		ActiveComms:   s.NumActiveComms(),
		PassiveComms:  s.NumPassiveComms(),
		TotalCommTime: s.TotalActiveCommTime(),
	}
	ops := map[string]bool{}
	for _, p := range s.Procs() {
		for _, sl := range s.ProcSlots(p) {
			ops[sl.Op] = true
		}
	}
	m.DistinctOps = len(ops)
	if m.DistinctOps > 0 {
		m.ReplicationFactor = float64(m.OpSlots) / float64(m.DistinctOps)
	}
	procs := s.Procs()
	if len(procs) > 0 && m.Makespan > 0 {
		total := 0.0
		for _, p := range procs {
			total += s.Utilization(p)
			if busy := s.ProcBusyTime(p); busy > m.MinPeriod {
				m.MinPeriod = busy
			}
		}
		m.MeanUtilization = total / float64(len(procs))
	}
	for _, l := range s.Links() {
		busy := 0.0
		for _, c := range s.LinkSlots(l) {
			if !c.Passive {
				busy += c.Duration()
			}
		}
		if busy > m.MinPeriod {
			m.MinPeriod = busy
		}
	}
	return m
}
