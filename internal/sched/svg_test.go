package sched

import (
	"encoding/xml"
	"strings"
	"testing"

	"ftsched/internal/graph"
)

func TestSVGWellFormed(t *testing.T) {
	f := newFixture(t)
	s := validBasic(f)
	s.AddCommSlot(CommSlot{
		Edge: graph.EdgeKey{Src: "A", Dst: "B"}, Link: "L",
		From: "P2", To: "P1", SrcProc: "P2", DstProc: "P1", SenderRank: 1,
		TransferID: s.NewTransferID(), Start: 4, End: 4.5, Passive: true, Timeout: 4,
	})
	svg := s.SVG()
	// The output must be well-formed XML.
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG is not well-formed XML: %v\n%s", err, svg)
		}
	}
	for _, frag := range []string{
		"<svg", "basic schedule", "A-&gt;B", `stroke-dasharray`, "P1", "P2",
	} {
		if !strings.Contains(svg, frag) {
			t.Errorf("SVG missing %q", frag)
		}
	}
}

func TestSVGMainOutline(t *testing.T) {
	f := newFixture(t)
	s := validBasic(f)
	svg := s.SVG()
	if !strings.Contains(svg, `stroke-width="2"`) {
		t.Error("main replicas should get the thick outline")
	}
}

func TestSVGEmptySchedule(t *testing.T) {
	svg := New(ModeBasic, 0).SVG()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Errorf("empty schedule SVG malformed:\n%s", svg)
	}
}
