package sched

import (
	"strings"
	"testing"

	"ftsched/internal/graph"
)

// passiveFixture builds a minimal FT1 schedule with a passive slot whose
// fields the tests then perturb.
func passiveSchedule() (*Schedule, *CommSlot) {
	s := New(ModeFT1, 1)
	s.AddOpSlot(OpSlot{Op: "A", Proc: "P1", Replica: 0, Start: 0, End: 1})
	s.AddOpSlot(OpSlot{Op: "A", Proc: "P2", Replica: 1, Start: 0, End: 1})
	s.AddOpSlot(OpSlot{Op: "B", Proc: "P1", Replica: 0, Start: 1, End: 3})
	s.AddOpSlot(OpSlot{Op: "B", Proc: "P2", Replica: 1, Start: 1, End: 3})
	c := s.AddCommSlot(CommSlot{
		Edge: graph.EdgeKey{Src: "A", Dst: "B"}, Link: "L",
		From: "P2", To: "P1", SrcProc: "P2", DstProc: "P1",
		SenderRank: 1, TransferID: s.NewTransferID(),
		Start: 2, End: 2.5, Passive: true, Timeout: 2,
	})
	return s, c
}

func TestValidatePassiveOK(t *testing.T) {
	f := newFixture(t)
	s, _ := passiveSchedule()
	if err := s.Validate(f.g, f.a, f.sp); err != nil {
		t.Fatalf("valid passive schedule rejected: %v", err)
	}
}

func TestValidatePassiveBeforeTimeout(t *testing.T) {
	f := newFixture(t)
	s, c := passiveSchedule()
	c.Timeout = 2.4 // starts at 2 < deadline 2.4
	err := s.Validate(f.g, f.a, f.sp)
	if err == nil || !strings.Contains(err.Error(), "before its failover deadline") {
		t.Fatalf("want deadline error, got %v", err)
	}
}

func TestValidatePassiveRankZero(t *testing.T) {
	f := newFixture(t)
	s, c := passiveSchedule()
	c.SenderRank = 0
	err := s.Validate(f.g, f.a, f.sp)
	if err == nil || !strings.Contains(err.Error(), "sender rank") {
		t.Fatalf("want rank error, got %v", err)
	}
}

func TestValidatePassiveOutsideFT1(t *testing.T) {
	f := newFixture(t)
	s, _ := passiveSchedule()
	s.Mode = ModeFT2
	err := s.Validate(f.g, f.a, f.sp)
	if err == nil || !strings.Contains(err.Error(), "passive transfer") {
		t.Fatalf("want mode error, got %v", err)
	}
}

// ft2Fixture builds a minimal FT2 schedule: A replicated on P1/P2, B on
// P1/P3; B@P3 must receive from both replicas of A, B@P1 from none.
func ft2Schedule(t *testing.T, f *fixture) *Schedule {
	t.Helper()
	s := New(ModeFT2, 1)
	s.AddOpSlot(OpSlot{Op: "A", Proc: "P1", Replica: 0, Start: 0, End: 1})
	s.AddOpSlot(OpSlot{Op: "A", Proc: "P2", Replica: 1, Start: 0, End: 1})
	s.AddOpSlot(OpSlot{Op: "B", Proc: "P1", Replica: 0, Start: 1, End: 3})
	s.AddOpSlot(OpSlot{Op: "B", Proc: "P3", Replica: 1, Start: 2, End: 4})
	e := graph.EdgeKey{Src: "A", Dst: "B"}
	s.AddCommSlot(CommSlot{Edge: e, Link: "L13", From: "P1", To: "P3",
		SrcProc: "P1", DstProc: "P3", TransferID: s.NewTransferID(), Start: 1, End: 1.5})
	s.AddCommSlot(CommSlot{Edge: e, Link: "L23", From: "P2", To: "P3",
		SrcProc: "P2", DstProc: "P3", SenderRank: 1, TransferID: s.NewTransferID(), Start: 1, End: 1.5})
	return s
}

// triFixture extends the two-proc fixture with a third processor and links.
func triFixture(t *testing.T) *fixture {
	t.Helper()
	f := newFixture(t)
	if err := f.a.AddProcessor("P3"); err != nil {
		t.Fatal(err)
	}
	_ = f.a.AddLink("L13", "P1", "P3")
	_ = f.a.AddLink("L23", "P2", "P3")
	for _, op := range []string{"A", "B"} {
		d := 1.0
		if op == "B" {
			d = 2.0
		}
		if err := f.sp.SetExec(op, "P3", d); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range []string{"L13", "L23"} {
		if err := f.sp.SetComm(graph.EdgeKey{Src: "A", Dst: "B"}, l, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestValidateFT2ReplicationOK(t *testing.T) {
	f := triFixture(t)
	s := ft2Schedule(t, f)
	if err := s.Validate(f.g, f.a, f.sp); err != nil {
		t.Fatalf("valid FT2 schedule rejected: %v", err)
	}
}

func TestValidateFT2MissingSender(t *testing.T) {
	f := triFixture(t)
	s := ft2Schedule(t, f)
	// Drop the rank-1 transfer: B@P3 now receives from only one of A's two
	// replicas.
	for l, slots := range s.links {
		var kept []*CommSlot
		for _, c := range slots {
			if c.SenderRank != 1 {
				kept = append(kept, c)
			}
		}
		s.links[l] = kept
	}
	err := s.Validate(f.g, f.a, f.sp)
	if err == nil || !strings.Contains(err.Error(), "one per producer replica") {
		t.Fatalf("want replication error, got %v", err)
	}
}

func TestValidateFT2ColocatedExtraSend(t *testing.T) {
	f := triFixture(t)
	s := ft2Schedule(t, f)
	// Add a pointless transfer to P1, where A already runs.
	s.AddCommSlot(CommSlot{Edge: graph.EdgeKey{Src: "A", Dst: "B"}, Link: "L",
		From: "P2", To: "P1", SrcProc: "P2", DstProc: "P1",
		SenderRank: 1, TransferID: s.NewTransferID(), Start: 1, End: 1.5})
	err := s.Validate(f.g, f.a, f.sp)
	if err == nil || !strings.Contains(err.Error(), "colocated with a producer replica") {
		t.Fatalf("want colocation error, got %v", err)
	}
}
