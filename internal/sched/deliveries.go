package sched

import (
	"math"
	"sort"

	"ftsched/internal/arch"
	"ftsched/internal/graph"
)

// Sender is one replica's transfer within a Delivery: the slots of one
// logical transfer from a producing replica towards the delivery's
// destination, in hop order.
type Sender struct {
	// Rank is the sending replica's rank (0 = main).
	Rank int
	// Proc is the sending replica's processor, the origin of hop 0.
	Proc string
	// Passive marks an FT1 backup reservation: the transfer only executes
	// when every earlier-ranked sender of the chain has been detected faulty.
	Passive bool
	// Deadline is the static worst-case arrival date of the transfer: the
	// failover deadline the receivers wait out before giving up on this
	// sender (ModeFT1). +Inf in the other modes, which have no timeouts.
	Deadline float64
	// Hops holds the transfer's comm slots sorted by hop index.
	Hops []*CommSlot
}

// TransferID returns the transfer identifier shared by the sender's hops.
func (sd *Sender) TransferID() int { return sd.Hops[0].TransferID }

// Duration returns the summed duration of the sender's hops: the time the
// value spends on links once the transfer starts.
func (sd *Sender) Duration() float64 {
	t := 0.0
	for _, h := range sd.Hops {
		t += h.Duration()
	}
	return t
}

// ForwardProcs returns the intermediate processors that store-and-forward
// the transfer along a multi-hop route, excluding the source. Every one of
// them must be alive for the value to get through.
func (sd *Sender) ForwardProcs() []string {
	var out []string
	for _, h := range sd.Hops[1:] {
		out = append(out, h.From)
	}
	return out
}

// Delivery is one logical delivery of the schedule: every sender able to
// provide one edge's value to one destination — a single processor, or every
// processor attached to a bus for broadcasts. In ModeFT1 the senders form a
// failover chain in rank order (Fig. 12); otherwise each sender is an
// independent active transfer and consumers keep the first arrival.
type Delivery struct {
	// Edge is the data-dependency being delivered.
	Edge graph.EdgeKey
	// Broadcast marks a bus delivery observed by every attached processor.
	Broadcast bool
	// Link is the bus carrying a broadcast delivery ("" otherwise).
	Link string
	// Dst is the destination processor of a point-to-point delivery ("" for
	// broadcasts).
	Dst string
	// Chain reports FT1 failover semantics: the senders form a timeout chain
	// instead of transmitting independently.
	Chain bool
	// Senders holds the delivery's transfers sorted by rank.
	Senders []*Sender
}

// Receivers returns the processors that observe the delivery's arrivals.
func (d *Delivery) Receivers(a *arch.Architecture) []string {
	if d.Broadcast {
		if l := a.Link(d.Link); l != nil {
			return l.Endpoints()
		}
		return nil
	}
	return []string{d.Dst}
}

// Deliveries groups the schedule's transfers into logical deliveries, the
// structure the simulator executes and the static certifier analyzes. The
// order is deterministic: first appearance by transfer ID, senders sorted by
// rank.
func (s *Schedule) Deliveries() []*Delivery {
	type key struct {
		edge graph.EdgeKey
		bus  string
		dst  string
	}
	byKey := map[key]*Delivery{}
	var order []key
	for _, hops := range s.Transfers() {
		first, last := hops[0], hops[len(hops)-1]
		k := key{edge: first.Edge}
		if first.Broadcast {
			k.bus = first.Link
		} else {
			k.dst = last.DstProc
		}
		d, ok := byKey[k]
		if !ok {
			d = &Delivery{
				Edge:      first.Edge,
				Broadcast: first.Broadcast,
				Link:      k.bus,
				Dst:       k.dst,
				Chain:     s.Mode == ModeFT1,
			}
			byKey[k] = d
			order = append(order, k)
		}
		deadline := math.Inf(1)
		if s.Mode == ModeFT1 {
			// The statically computed worst-case arrival of the transfer is
			// the detection deadline the receivers wait for (Section 6.1).
			deadline = last.End
		}
		d.Senders = append(d.Senders, &Sender{
			Rank:     first.SenderRank,
			Proc:     first.SrcProc,
			Passive:  first.Passive,
			Deadline: deadline,
			Hops:     hops,
		})
	}
	out := make([]*Delivery, 0, len(order))
	for _, k := range order {
		d := byKey[k]
		sort.SliceStable(d.Senders, func(i, j int) bool { return d.Senders[i].Rank < d.Senders[j].Rank })
		out = append(out, d)
	}
	return out
}
