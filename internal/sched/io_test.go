package sched

import (
	"testing"

	"ftsched/internal/graph"
)

func TestScheduleJSONRoundTrip(t *testing.T) {
	f := newFixture(t)
	s := validBasic(f)
	s.Mode = ModeFT1
	s.K = 1
	s.AddCommSlot(CommSlot{
		Edge: graph.EdgeKey{Src: "A", Dst: "B"}, Link: "L",
		From: "P2", To: "P1", SrcProc: "P2", DstProc: "P1", SenderRank: 1,
		TransferID: s.NewTransferID(), Start: 2, End: 2.5, Passive: true, Timeout: 2,
	})
	s.AddCommSlot(CommSlot{
		Edge: graph.EdgeKey{Src: "A", Dst: "B"}, Link: "L",
		From: "P1", SrcProc: "P1",
		TransferID: s.NewTransferID(), Start: 3, End: 3.5, Broadcast: true,
	})

	data, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, data)
	}
	if back.Mode != ModeFT1 || back.K != 1 {
		t.Errorf("mode/K lost: %v %d", back.Mode, back.K)
	}
	if back.Gantt() != s.Gantt() {
		t.Errorf("round trip changed the schedule:\n%s\nvs\n%s", back.Gantt(), s.Gantt())
	}
	if back.NumPassiveComms() != 1 || back.NumActiveComms() != 2 {
		t.Errorf("comm counts: %d passive, %d active",
			back.NumPassiveComms(), back.NumActiveComms())
	}
	// Fresh transfer IDs must not collide with decoded ones.
	if id := back.NewTransferID(); id <= 2 {
		t.Errorf("NewTransferID after decode = %d, want > 2", id)
	}
	// The passive slot keeps its timeout and the broadcast its flag.
	var passives, bcasts int
	for _, l := range back.Links() {
		for _, c := range back.LinkSlots(l) {
			if c.Passive {
				passives++
				if c.Timeout != 2 {
					t.Errorf("passive timeout = %v", c.Timeout)
				}
			}
			if c.Broadcast {
				bcasts++
			}
		}
	}
	if passives != 1 || bcasts != 1 {
		t.Errorf("passives=%d bcasts=%d", passives, bcasts)
	}
}

func TestScheduleJSONDecodeErrors(t *testing.T) {
	var s Schedule
	if err := s.UnmarshalJSON([]byte(`garbage`)); err == nil {
		t.Error("expected syntax error")
	}
	if err := s.UnmarshalJSON([]byte(`{"mode":"warp","k":1}`)); err == nil {
		t.Error("expected unknown-mode error")
	}
}

func TestScheduleJSONValidatesAfterRoundTrip(t *testing.T) {
	f := newFixture(t)
	s := validBasic(f)
	data, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(f.g, f.a, f.sp); err != nil {
		t.Fatalf("decoded schedule invalid: %v", err)
	}
}
