package sched

import (
	"math"
	"testing"

	"ftsched/internal/graph"
)

func TestComputeMetricsBasic(t *testing.T) {
	f := newFixture(t)
	s := validBasic(f)
	m := s.ComputeMetrics()
	if m.Makespan != 3.5 || m.OpSlots != 2 || m.DistinctOps != 2 {
		t.Errorf("metrics = %+v", m)
	}
	if m.ReplicationFactor != 1 {
		t.Errorf("replication = %v", m.ReplicationFactor)
	}
	if m.ActiveComms != 1 || m.PassiveComms != 0 || m.TotalCommTime != 0.5 {
		t.Errorf("comm metrics = %+v", m)
	}
	// P1 busy 1/3.5, P2 busy 2/3.5.
	want := (1.0/3.5 + 2.0/3.5) / 2
	if math.Abs(m.MeanUtilization-want) > 1e-9 {
		t.Errorf("utilization = %v, want %v", m.MeanUtilization, want)
	}
}

func TestComputeMetricsReplication(t *testing.T) {
	s := New(ModeFT1, 1)
	s.AddOpSlot(OpSlot{Op: "A", Proc: "P1", Replica: 0, Start: 0, End: 1})
	s.AddOpSlot(OpSlot{Op: "A", Proc: "P2", Replica: 1, Start: 0, End: 1})
	s.AddOpSlot(OpSlot{Op: "B", Proc: "P1", Replica: 0, Start: 1, End: 2})
	s.AddCommSlot(CommSlot{Edge: graph.EdgeKey{Src: "A", Dst: "B"}, Link: "L",
		From: "P2", To: "P1", SrcProc: "P2", DstProc: "P1", SenderRank: 1,
		Start: 1, End: 1.5, Passive: true, Timeout: 1})
	m := s.ComputeMetrics()
	if m.OpSlots != 3 || m.DistinctOps != 2 {
		t.Errorf("metrics = %+v", m)
	}
	if m.ReplicationFactor != 1.5 {
		t.Errorf("replication = %v", m.ReplicationFactor)
	}
	if m.PassiveComms != 1 || m.ActiveComms != 0 {
		t.Errorf("comms = %+v", m)
	}
}

func TestComputeMetricsMinPeriod(t *testing.T) {
	f := newFixture(t)
	s := validBasic(f)
	m := s.ComputeMetrics()
	// Busy times: P1 = 1, P2 = 2, link = 0.5 -> MinPeriod = 2.
	if m.MinPeriod != 2 {
		t.Errorf("MinPeriod = %v, want 2", m.MinPeriod)
	}
	if m.MinPeriod > m.Makespan {
		t.Error("MinPeriod cannot exceed the makespan")
	}
}

func TestComputeMetricsEmpty(t *testing.T) {
	m := New(ModeBasic, 0).ComputeMetrics()
	if m != (Metrics{}) {
		t.Errorf("empty metrics = %+v", m)
	}
}
