// Package sched defines the static distributed schedule produced by the AAA
// heuristics: a total order of operation replicas on every computation unit
// and of communications on every link, with start/end dates in abstract time
// units.
//
// Schedules carry enough structure for the three scheduler families of the
// paper: the non-fault-tolerant baseline (one replica per operation, all
// communications active), the first fault-tolerant solution (K+1 replicas,
// a single active communication per dependency plus passive backup sends
// guarded by timeouts), and the second solution (K+1 replicas with fully
// replicated active communications).
package sched

import (
	"fmt"
	"math"
	"sort"

	"ftsched/internal/graph"
)

// Mode identifies which scheduler family produced a schedule; validation and
// simulation semantics depend on it.
type Mode int

// Scheduler families.
const (
	// ModeBasic is the non-fault-tolerant SynDEx baseline.
	ModeBasic Mode = iota + 1
	// ModeFT1 is the first solution: active replication of operations,
	// time redundancy (timeouts) for communications.
	ModeFT1
	// ModeFT2 is the second solution: active replication of operations and
	// communications.
	ModeFT2
)

// String returns a short name for the mode.
func (m Mode) String() string {
	switch m {
	case ModeBasic:
		return "basic"
	case ModeFT1:
		return "ft1"
	case ModeFT2:
		return "ft2"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// OpSlot is one scheduled replica of an operation on a processor.
type OpSlot struct {
	// Op is the operation's name in the algorithm graph.
	Op string
	// Proc is the processor executing this replica.
	Proc string
	// Replica ranks the replicas of Op by completion date: 0 is the main
	// replica, 1..K the backups in election order (Section 6.1, Item 4).
	Replica int
	// Start and End are the static dates of the slot.
	Start, End float64
}

// Main reports whether this is the main replica of its operation.
func (s *OpSlot) Main() bool { return s.Replica == 0 }

// Duration returns the slot's length.
func (s *OpSlot) Duration() float64 { return s.End - s.Start }

// CommSlot is one scheduled data transfer (comm) on a link. A logical
// transfer from a producing replica to a destination processor occupies one
// CommSlot per hop of its route; slots of one transfer share TransferID and
// are numbered by Hop.
type CommSlot struct {
	// Edge is the data-dependency being transferred.
	Edge graph.EdgeKey
	// Link carries this hop.
	Link string
	// From and To are the processors at the ends of this hop.
	From, To string
	// SrcProc is the processor of the sending replica (origin of hop 0).
	SrcProc string
	// DstProc is the final destination processor of the transfer. For a bus
	// broadcast it is empty: every processor on the bus receives the value.
	DstProc string
	// SenderRank is the rank of the sending replica (0 = main). In FT1 only
	// rank-0 transfers are active; higher ranks are passive reservations.
	SenderRank int
	// TransferID groups the hops of one logical transfer; Hop numbers them
	// from 0.
	TransferID int
	// Hop is the index of this slot along its transfer's route.
	Hop int
	// Start and End are the static dates. For passive slots they are the
	// dates the transfer would occupy if activated by a failure.
	Start, End float64
	// Passive marks an FT1 backup send: it does not occupy the link unless
	// every earlier-ranked sender has been detected faulty.
	Passive bool
	// Timeout is the absolute date at which the receiver gives up waiting
	// for the previous-ranked sender and fails over (Fig. 12). Zero for
	// active slots of rank 0 in ModeBasic/ModeFT2.
	Timeout float64
	// Broadcast marks a bus transfer observed by every attached processor.
	Broadcast bool
}

// Duration returns the slot's length.
func (c *CommSlot) Duration() float64 { return c.End - c.Start }

// Schedule is a complete static distributed schedule.
type Schedule struct {
	// Mode records which scheduler produced the schedule.
	Mode Mode
	// K is the number of tolerated processor failures (0 for ModeBasic).
	K int

	procs map[string][]*OpSlot
	links map[string][]*CommSlot

	// Memoized sorted views, built lazily by the accessors and dropped on
	// mutation. Validate/Certify/render callers walk every processor and
	// link repeatedly; sorting once per mutation instead of once per call
	// keeps those walks linear.
	sortedProcSlots map[string][]*OpSlot
	sortedLinkSlots map[string][]*CommSlot
	procNames       []string
	linkNames       []string
	transfers       [][]*CommSlot

	nextTransfer int
}

// New returns an empty schedule for the given mode and K.
func New(mode Mode, k int) *Schedule {
	return &Schedule{
		Mode:  mode,
		K:     k,
		procs: make(map[string][]*OpSlot),
		links: make(map[string][]*CommSlot),
	}
}

// AddOpSlot records an operation replica. Slots may be added in any order;
// accessors return them sorted by start date.
func (s *Schedule) AddOpSlot(slot OpSlot) *OpSlot {
	cp := slot
	s.procs[slot.Proc] = append(s.procs[slot.Proc], &cp)
	delete(s.sortedProcSlots, slot.Proc)
	s.procNames = nil
	return &cp
}

// NewTransferID allocates a fresh transfer identifier.
func (s *Schedule) NewTransferID() int {
	id := s.nextTransfer
	s.nextTransfer++
	return id
}

// ReserveTransferIDs advances the allocator so the next NewTransferID returns
// at least n. Builders that bulk-load slots carrying pre-assigned IDs (the
// core scheduler materializing its arenas) call this so later allocations
// cannot collide with the loaded ones.
func (s *Schedule) ReserveTransferIDs(n int) {
	if n > s.nextTransfer {
		s.nextTransfer = n
	}
}

// AddCommSlot records a communication hop.
func (s *Schedule) AddCommSlot(slot CommSlot) *CommSlot {
	cp := slot
	s.links[slot.Link] = append(s.links[slot.Link], &cp)
	delete(s.sortedLinkSlots, slot.Link)
	s.linkNames = nil
	s.transfers = nil
	return &cp
}

// ProcSlots returns the op slots of proc sorted by start date (stable on
// insertion order for equal starts). The slice is memoized until the next
// AddOpSlot; callers must not modify it.
func (s *Schedule) ProcSlots(proc string) []*OpSlot {
	if out, ok := s.sortedProcSlots[proc]; ok {
		return out
	}
	out := make([]*OpSlot, len(s.procs[proc]))
	copy(out, s.procs[proc])
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	out = out[:len(out):len(out)]
	if s.sortedProcSlots == nil {
		s.sortedProcSlots = make(map[string][]*OpSlot)
	}
	s.sortedProcSlots[proc] = out
	return out
}

// LinkSlots returns the comm slots of link sorted by start date. The slice is
// memoized until the next AddCommSlot; callers must not modify it.
func (s *Schedule) LinkSlots(link string) []*CommSlot {
	if out, ok := s.sortedLinkSlots[link]; ok {
		return out
	}
	out := make([]*CommSlot, len(s.links[link]))
	copy(out, s.links[link])
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	out = out[:len(out):len(out)]
	if s.sortedLinkSlots == nil {
		s.sortedLinkSlots = make(map[string][]*CommSlot)
	}
	s.sortedLinkSlots[link] = out
	return out
}

// Procs returns the processors with at least one slot, sorted by name. The
// slice is memoized until the next AddOpSlot; callers must not modify it.
func (s *Schedule) Procs() []string {
	if s.procNames != nil {
		return s.procNames
	}
	out := make([]string, 0, len(s.procs))
	for p := range s.procs {
		out = append(out, p)
	}
	sort.Strings(out)
	s.procNames = out[:len(out):len(out)]
	return s.procNames
}

// Links returns the links with at least one slot, sorted by name. The slice
// is memoized until the next AddCommSlot; callers must not modify it.
func (s *Schedule) Links() []string {
	if s.linkNames != nil {
		return s.linkNames
	}
	out := make([]string, 0, len(s.links))
	for l := range s.links {
		out = append(out, l)
	}
	sort.Strings(out)
	s.linkNames = out[:len(out):len(out)]
	return s.linkNames
}

// Replicas returns the slots of op across all processors, sorted by replica
// rank (ties — only possible in malformed schedules — broken by processor
// name, so diagnostics stay deterministic).
func (s *Schedule) Replicas(op string) []*OpSlot {
	var out []*OpSlot
	for _, slots := range s.procs {
		for _, sl := range slots {
			if sl.Op == op {
				out = append(out, sl)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Replica != out[j].Replica {
			return out[i].Replica < out[j].Replica
		}
		return out[i].Proc < out[j].Proc
	})
	return out
}

// MainReplica returns the main replica slot of op, or nil if op is not
// scheduled.
func (s *Schedule) MainReplica(op string) *OpSlot {
	for _, slots := range s.procs { //ftlint:order-insensitive at most one slot matches: an op has exactly one rank-0 replica
		for _, sl := range slots {
			if sl.Op == op && sl.Replica == 0 {
				return sl
			}
		}
	}
	return nil
}

// ReplicaOn returns op's slot on proc, or nil.
func (s *Schedule) ReplicaOn(op, proc string) *OpSlot {
	for _, sl := range s.procs[proc] {
		if sl.Op == op {
			return sl
		}
	}
	return nil
}

// Transfers returns all comm slots grouped by transfer, each group sorted by
// hop, groups sorted by transfer ID. The result is memoized until the next
// AddCommSlot; callers must not modify it.
func (s *Schedule) Transfers() [][]*CommSlot {
	if s.transfers != nil {
		return s.transfers
	}
	byID := map[int][]*CommSlot{}
	for _, slots := range s.links { //ftlint:order-insensitive grouping only; ids and hops are both sorted below, and each (transfer, hop) pair is unique
		for _, c := range slots {
			byID[c.TransferID] = append(byID[c.TransferID], c)
		}
	}
	ids := make([]int, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([][]*CommSlot, 0, len(ids))
	for _, id := range ids {
		hops := byID[id]
		sort.Slice(hops, func(i, j int) bool { return hops[i].Hop < hops[j].Hop })
		out = append(out, hops)
	}
	s.transfers = out[:len(out):len(out)]
	return s.transfers
}

// Makespan returns the completion date of the schedule in the failure-free
// execution: the latest end over op slots and active comm slots.
func (s *Schedule) Makespan() float64 {
	m := 0.0
	for _, slots := range s.procs {
		for _, sl := range slots {
			if sl.End > m {
				m = sl.End
			}
		}
	}
	for _, slots := range s.links {
		for _, c := range slots {
			if !c.Passive && c.End > m {
				m = c.End
			}
		}
	}
	return m
}

// NumOpSlots returns the total number of scheduled operation replicas.
func (s *Schedule) NumOpSlots() int {
	n := 0
	for _, slots := range s.procs {
		n += len(slots)
	}
	return n
}

// NumActiveComms returns the number of active (failure-free) inter-processor
// communication hops.
func (s *Schedule) NumActiveComms() int {
	n := 0
	for _, slots := range s.links {
		for _, c := range slots {
			if !c.Passive {
				n++
			}
		}
	}
	return n
}

// NumPassiveComms returns the number of passive (timeout-guarded) hops.
func (s *Schedule) NumPassiveComms() int {
	n := 0
	for _, slots := range s.links {
		for _, c := range slots {
			if c.Passive {
				n++
			}
		}
	}
	return n
}

// TotalActiveCommTime returns the summed duration of active hops, the
// failure-free communication load of the schedule. Links are visited in
// sorted order so the floating-point sum is bit-identical across runs.
func (s *Schedule) TotalActiveCommTime() float64 {
	t := 0.0
	for _, link := range s.Links() {
		for _, c := range s.links[link] {
			if !c.Passive {
				t += c.Duration()
			}
		}
	}
	return t
}

// ProcBusyTime returns the summed execution time scheduled on proc.
func (s *Schedule) ProcBusyTime(proc string) float64 {
	t := 0.0
	for _, sl := range s.procs[proc] {
		t += sl.Duration()
	}
	return t
}

// Utilization returns ProcBusyTime / Makespan for proc, or 0 for an empty
// schedule.
func (s *Schedule) Utilization(proc string) float64 {
	m := s.Makespan()
	if m == 0 {
		return 0
	}
	return s.ProcBusyTime(proc) / m
}

// Overhead returns the fault-tolerance overhead relative to a baseline
// schedule of the same problem: Makespan() - base.Makespan() (Sections 6.6
// and 7.4 report exactly this difference).
func (s *Schedule) Overhead(base *Schedule) float64 {
	return s.Makespan() - base.Makespan()
}

// timeEq reports near-equality of schedule dates, absorbing float64 noise
// accumulated by repeated additions of durations such as 0.1.
func timeEq(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

// timeLE reports a <= b up to the same tolerance.
func timeLE(a, b float64) bool { return a <= b+1e-6 }
