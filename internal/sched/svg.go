package sched

import (
	"fmt"
	"strings"
)

// SVG renders the schedule as a self-contained SVG Gantt chart: one row per
// processor and per link, operation replicas as boxes (mains outlined),
// active transfers as gray boxes, passive reservations as dashed outlines.
// Suitable for embedding in documentation; the geometry mirrors the paper's
// timing diagrams (Figs. 14-18, 22-24).
func (s *Schedule) SVG() string {
	const (
		rowH     = 34
		rowGap   = 8
		leftPad  = 70
		topPad   = 30
		pxPerT   = 60.0
		labelFmt = `<text x="%g" y="%g" font-size="11" font-family="sans-serif"%s>%s</text>`
	)
	makespan := s.Makespan()
	// Include passive reservations in the horizontal extent.
	for _, l := range s.Links() {
		for _, c := range s.LinkSlots(l) {
			if c.End > makespan {
				makespan = c.End
			}
		}
	}
	rows := append(s.Procs(), s.Links()...)
	width := leftPad + int(makespan*pxPerT) + 20
	height := topPad + len(rows)*(rowH+rowGap) + 20

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, labelFmt+"\n", float64(leftPad), 16.0, "",
		fmt.Sprintf("%s schedule, K=%d, makespan=%s", s.Mode, s.K, fmtTime(s.Makespan())))

	x := func(t float64) float64 { return leftPad + t*pxPerT }
	for ri, row := range rows {
		y := float64(topPad + ri*(rowH+rowGap))
		fmt.Fprintf(&b, labelFmt+"\n", 4.0, y+rowH/2+4, "", xmlEscape(row))
		fmt.Fprintf(&b, `<line x1="%d" y1="%g" x2="%d" y2="%g" stroke="#ccc"/>`+"\n",
			leftPad, y+rowH, width-10, y+rowH)
		if ri < len(s.Procs()) {
			for _, sl := range s.ProcSlots(row) {
				stroke := "#555"
				strokeW := 1.0
				if sl.Main() {
					stroke, strokeW = "#000", 2.0
				}
				fmt.Fprintf(&b, `<rect x="%g" y="%g" width="%g" height="%d" fill="#e8f0fe" stroke="%s" stroke-width="%g"/>`+"\n",
					x(sl.Start), y, (sl.End-sl.Start)*pxPerT, rowH, stroke, strokeW)
				fmt.Fprintf(&b, labelFmt+"\n", x(sl.Start)+3, y+rowH/2+4, "", xmlEscape(sl.Op))
			}
			continue
		}
		for _, c := range s.LinkSlots(row) {
			if c.Passive {
				fmt.Fprintf(&b, `<rect x="%g" y="%g" width="%g" height="%d" fill="none" stroke="#999" stroke-dasharray="4 2"/>`+"\n",
					x(c.Start), y, (c.End-c.Start)*pxPerT, rowH)
			} else {
				fmt.Fprintf(&b, `<rect x="%g" y="%g" width="%g" height="%d" fill="#d5d5d5" stroke="#777"/>`+"\n",
					x(c.Start), y, (c.End-c.Start)*pxPerT, rowH)
			}
			fmt.Fprintf(&b, labelFmt+"\n", x(c.Start)+2, y+rowH/2+4,
				` transform=""`, xmlEscape(c.Edge.String()))
		}
	}
	// Time axis ticks every whole unit.
	axisY := float64(topPad + len(rows)*(rowH+rowGap))
	for t := 0.0; t <= makespan+1e-9; t++ {
		fmt.Fprintf(&b, `<line x1="%g" y1="%d" x2="%g" y2="%g" stroke="#aaa"/>`+"\n",
			x(t), topPad, x(t), axisY)
		fmt.Fprintf(&b, labelFmt+"\n", x(t)-3, axisY+14, "", fmtTime(t))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// xmlEscape escapes the characters XML text nodes cannot contain.
func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
