package sched

import (
	"math"
	"sort"
	"strings"
	"testing"

	"ftsched/internal/arch"
	"ftsched/internal/graph"
	"ftsched/internal/spec"
)

// fixture builds a two-op chain A->B, two processors joined by one link,
// unit costs: exec(A)=1, exec(B)=2 everywhere, comm(A->B)=0.5.
type fixture struct {
	g  *graph.Graph
	a  *arch.Architecture
	sp *spec.Spec
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	g := graph.New("g")
	if err := g.AddComp("A"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddComp("B"); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("A", "B"); err != nil {
		t.Fatal(err)
	}
	a := arch.New("a")
	_ = a.AddProcessor("P1")
	_ = a.AddProcessor("P2")
	if err := a.AddLink("L", "P1", "P2"); err != nil {
		t.Fatal(err)
	}
	sp := spec.New()
	for _, op := range []string{"A", "B"} {
		d := 1.0
		if op == "B" {
			d = 2.0
		}
		for _, p := range []string{"P1", "P2"} {
			if err := sp.SetExec(op, p, d); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sp.SetComm(graph.EdgeKey{Src: "A", Dst: "B"}, "L", 0.5); err != nil {
		t.Fatal(err)
	}
	return &fixture{g: g, a: a, sp: sp}
}

// validBasic builds a correct basic schedule: A on P1 [0,1], comm [1,1.5],
// B on P2 [1.5,3.5].
func validBasic(f *fixture) *Schedule {
	s := New(ModeBasic, 0)
	s.AddOpSlot(OpSlot{Op: "A", Proc: "P1", Replica: 0, Start: 0, End: 1})
	s.AddOpSlot(OpSlot{Op: "B", Proc: "P2", Replica: 0, Start: 1.5, End: 3.5})
	s.AddCommSlot(CommSlot{
		Edge: graph.EdgeKey{Src: "A", Dst: "B"}, Link: "L",
		From: "P1", To: "P2", SrcProc: "P1", DstProc: "P2",
		TransferID: s.NewTransferID(), Hop: 0, Start: 1, End: 1.5,
	})
	return s
}

func TestValidateAcceptsCorrectBasic(t *testing.T) {
	f := newFixture(t)
	s := validBasic(f)
	if err := s.Validate(f.g, f.a, f.sp); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestMakespanAndMetrics(t *testing.T) {
	f := newFixture(t)
	s := validBasic(f)
	if got := s.Makespan(); got != 3.5 {
		t.Errorf("Makespan = %v", got)
	}
	if got := s.NumOpSlots(); got != 2 {
		t.Errorf("NumOpSlots = %d", got)
	}
	if got := s.NumActiveComms(); got != 1 {
		t.Errorf("NumActiveComms = %d", got)
	}
	if got := s.NumPassiveComms(); got != 0 {
		t.Errorf("NumPassiveComms = %d", got)
	}
	if got := s.TotalActiveCommTime(); got != 0.5 {
		t.Errorf("TotalActiveCommTime = %v", got)
	}
	if got := s.ProcBusyTime("P1"); got != 1 {
		t.Errorf("ProcBusyTime(P1) = %v", got)
	}
	if got := s.Utilization("P2"); math.Abs(got-2/3.5) > 1e-9 {
		t.Errorf("Utilization(P2) = %v", got)
	}
	if got := New(ModeBasic, 0).Utilization("P1"); got != 0 {
		t.Errorf("empty Utilization = %v", got)
	}
	base := validBasic(f)
	if got := s.Overhead(base); got != 0 {
		t.Errorf("Overhead vs self = %v", got)
	}
}

func TestModeString(t *testing.T) {
	if ModeBasic.String() != "basic" || ModeFT1.String() != "ft1" || ModeFT2.String() != "ft2" {
		t.Error("mode strings")
	}
	if !strings.Contains(Mode(7).String(), "7") {
		t.Error("unknown mode string")
	}
}

func TestAccessors(t *testing.T) {
	f := newFixture(t)
	s := validBasic(f)
	if got := s.Procs(); len(got) != 2 || got[0] != "P1" {
		t.Errorf("Procs = %v", got)
	}
	if got := s.Links(); len(got) != 1 || got[0] != "L" {
		t.Errorf("Links = %v", got)
	}
	if s.MainReplica("A") == nil || s.MainReplica("zz") != nil {
		t.Error("MainReplica")
	}
	if s.ReplicaOn("A", "P1") == nil || s.ReplicaOn("A", "P2") != nil {
		t.Error("ReplicaOn")
	}
	reps := s.Replicas("A")
	if len(reps) != 1 || !reps[0].Main() {
		t.Errorf("Replicas = %v", reps)
	}
	tr := s.Transfers()
	if len(tr) != 1 || len(tr[0]) != 1 || tr[0][0].Duration() != 0.5 {
		t.Errorf("Transfers = %v", tr)
	}
}

func TestValidateMissingOp(t *testing.T) {
	f := newFixture(t)
	s := New(ModeBasic, 0)
	s.AddOpSlot(OpSlot{Op: "A", Proc: "P1", Start: 0, End: 1})
	err := s.Validate(f.g, f.a, f.sp)
	if err == nil || !strings.Contains(err.Error(), `"B" is not scheduled`) {
		t.Errorf("want missing-op error, got %v", err)
	}
}

func TestValidateOverlapOnProc(t *testing.T) {
	f := newFixture(t)
	s := New(ModeBasic, 0)
	s.AddOpSlot(OpSlot{Op: "A", Proc: "P1", Start: 0, End: 1})
	s.AddOpSlot(OpSlot{Op: "B", Proc: "P1", Start: 0.5, End: 2.5})
	err := s.Validate(f.g, f.a, f.sp)
	if err == nil || !strings.Contains(err.Error(), "overlaps") {
		t.Errorf("want overlap error, got %v", err)
	}
}

func TestValidateWrongDuration(t *testing.T) {
	f := newFixture(t)
	s := New(ModeBasic, 0)
	s.AddOpSlot(OpSlot{Op: "A", Proc: "P1", Start: 0, End: 2}) // should be 1
	s.AddOpSlot(OpSlot{Op: "B", Proc: "P1", Start: 2, End: 4})
	err := s.Validate(f.g, f.a, f.sp)
	if err == nil || !strings.Contains(err.Error(), "spec says") {
		t.Errorf("want duration error, got %v", err)
	}
}

func TestValidateForbiddenProcessor(t *testing.T) {
	f := newFixture(t)
	_ = f.sp.SetExec("A", "P1", spec.Inf)
	s := New(ModeBasic, 0)
	s.AddOpSlot(OpSlot{Op: "A", Proc: "P1", Start: 0, End: 1})
	s.AddOpSlot(OpSlot{Op: "B", Proc: "P1", Start: 1, End: 3})
	err := s.Validate(f.g, f.a, f.sp)
	if err == nil || !strings.Contains(err.Error(), "forbidden") {
		t.Errorf("want forbidden error, got %v", err)
	}
}

func TestValidateNegativeStart(t *testing.T) {
	f := newFixture(t)
	s := New(ModeBasic, 0)
	s.AddOpSlot(OpSlot{Op: "A", Proc: "P1", Start: -1, End: 0})
	s.AddOpSlot(OpSlot{Op: "B", Proc: "P1", Start: 0, End: 2})
	err := s.Validate(f.g, f.a, f.sp)
	if err == nil || !strings.Contains(err.Error(), "< 0") {
		t.Errorf("want negative-start error, got %v", err)
	}
}

func TestValidateMissingInputDelivery(t *testing.T) {
	f := newFixture(t)
	s := New(ModeBasic, 0)
	s.AddOpSlot(OpSlot{Op: "A", Proc: "P1", Start: 0, End: 1})
	s.AddOpSlot(OpSlot{Op: "B", Proc: "P2", Start: 1.5, End: 3.5})
	// No comm slot: B never receives A's value.
	err := s.Validate(f.g, f.a, f.sp)
	if err == nil || !strings.Contains(err.Error(), "never receives input") {
		t.Errorf("want missing-input error, got %v", err)
	}
}

func TestValidateStartsBeforeArrival(t *testing.T) {
	f := newFixture(t)
	s := validBasic(f)
	// Move B before the comm completes.
	for _, sl := range s.procs["P2"] {
		sl.Start, sl.End = 1.0, 3.0
	}
	err := s.Validate(f.g, f.a, f.sp)
	if err == nil || !strings.Contains(err.Error(), "before input") {
		t.Errorf("want early-start error, got %v", err)
	}
}

func TestValidateCommBeforeProducer(t *testing.T) {
	f := newFixture(t)
	s := New(ModeBasic, 0)
	s.AddOpSlot(OpSlot{Op: "A", Proc: "P1", Start: 0, End: 1})
	s.AddOpSlot(OpSlot{Op: "B", Proc: "P2", Start: 1, End: 3})
	s.AddCommSlot(CommSlot{
		Edge: graph.EdgeKey{Src: "A", Dst: "B"}, Link: "L",
		From: "P1", To: "P2", SrcProc: "P1", DstProc: "P2",
		TransferID: 0, Hop: 0, Start: 0.5, End: 1.0, // starts before A ends
	})
	err := s.Validate(f.g, f.a, f.sp)
	if err == nil || !strings.Contains(err.Error(), "before producer ends") {
		t.Errorf("want comm-causality error, got %v", err)
	}
}

func TestValidateLinkOverlap(t *testing.T) {
	f := newFixture(t)
	// Add a second edge so two comms exist.
	_ = f.g.AddComp("C")
	_ = f.g.Connect("A", "C")
	_ = f.sp.SetExec("C", "P1", 1)
	_ = f.sp.SetExec("C", "P2", 1)
	_ = f.sp.SetComm(graph.EdgeKey{Src: "A", Dst: "C"}, "L", 0.5)
	s := New(ModeBasic, 0)
	s.AddOpSlot(OpSlot{Op: "A", Proc: "P1", Start: 0, End: 1})
	s.AddOpSlot(OpSlot{Op: "B", Proc: "P2", Start: 1.5, End: 3.5})
	s.AddOpSlot(OpSlot{Op: "C", Proc: "P2", Start: 3.5, End: 4.5})
	s.AddCommSlot(CommSlot{Edge: graph.EdgeKey{Src: "A", Dst: "B"}, Link: "L",
		From: "P1", To: "P2", SrcProc: "P1", DstProc: "P2", TransferID: 0, Hop: 0, Start: 1, End: 1.5})
	s.AddCommSlot(CommSlot{Edge: graph.EdgeKey{Src: "A", Dst: "C"}, Link: "L",
		From: "P1", To: "P2", SrcProc: "P1", DstProc: "P2", TransferID: 1, Hop: 0, Start: 1.25, End: 1.75})
	err := s.Validate(f.g, f.a, f.sp)
	if err == nil || !strings.Contains(err.Error(), "overlaps") {
		t.Errorf("want link-overlap error, got %v", err)
	}
}

func TestValidatePassiveSlotsMayOverlap(t *testing.T) {
	f := newFixture(t)
	s := New(ModeFT1, 1)
	// A and B are both replicated on P1 and P2; all inputs are local.
	s.AddOpSlot(OpSlot{Op: "A", Proc: "P1", Replica: 0, Start: 0, End: 1})
	s.AddOpSlot(OpSlot{Op: "A", Proc: "P2", Replica: 1, Start: 0, End: 1})
	s.AddOpSlot(OpSlot{Op: "B", Proc: "P1", Replica: 0, Start: 1, End: 3})
	s.AddOpSlot(OpSlot{Op: "B", Proc: "P2", Replica: 1, Start: 1, End: 3})
	// Two overlapping passive reservations are fine: at most one activates.
	for i := 0; i < 2; i++ {
		s.AddCommSlot(CommSlot{
			Edge: graph.EdgeKey{Src: "A", Dst: "B"}, Link: "L",
			From: "P2", To: "P1", SrcProc: "P2", DstProc: "P1",
			SenderRank: 1, TransferID: s.NewTransferID(), Hop: 0,
			Start: 2, End: 2.5, Passive: true, Timeout: 2,
		})
	}
	if err := s.Validate(f.g, f.a, f.sp); err != nil {
		t.Fatalf("passive overlap should be legal: %v", err)
	}
}

func TestValidateReplicaStructureFT(t *testing.T) {
	f := newFixture(t)
	s := New(ModeFT1, 1)
	// Only one replica of each op: must fail for K=1.
	s.AddOpSlot(OpSlot{Op: "A", Proc: "P1", Replica: 0, Start: 0, End: 1})
	s.AddOpSlot(OpSlot{Op: "B", Proc: "P1", Replica: 0, Start: 1, End: 3})
	err := s.Validate(f.g, f.a, f.sp)
	if err == nil || !strings.Contains(err.Error(), "replicas, want 2") {
		t.Errorf("want replica-count error, got %v", err)
	}
}

func TestValidateDuplicateReplicaProc(t *testing.T) {
	f := newFixture(t)
	s := New(ModeFT1, 1)
	s.AddOpSlot(OpSlot{Op: "A", Proc: "P1", Replica: 0, Start: 0, End: 1})
	s.AddOpSlot(OpSlot{Op: "A", Proc: "P1", Replica: 1, Start: 1, End: 2})
	s.AddOpSlot(OpSlot{Op: "B", Proc: "P1", Replica: 0, Start: 2, End: 4})
	s.AddOpSlot(OpSlot{Op: "B", Proc: "P2", Replica: 1, Start: 4, End: 6})
	err := s.Validate(f.g, f.a, f.sp)
	if err == nil || !strings.Contains(err.Error(), "two replicas on processor") {
		t.Errorf("want duplicate-proc error, got %v", err)
	}
}

func TestValidateReplicaRankOrder(t *testing.T) {
	f := newFixture(t)
	s := New(ModeFT1, 1)
	// Rank 0 ends later than rank 1: election order violated.
	s.AddOpSlot(OpSlot{Op: "A", Proc: "P1", Replica: 0, Start: 2, End: 3})
	s.AddOpSlot(OpSlot{Op: "A", Proc: "P2", Replica: 1, Start: 0, End: 1})
	s.AddOpSlot(OpSlot{Op: "B", Proc: "P1", Replica: 0, Start: 3, End: 5})
	s.AddOpSlot(OpSlot{Op: "B", Proc: "P2", Replica: 1, Start: 5, End: 7})
	err := s.Validate(f.g, f.a, f.sp)
	if err == nil || !strings.Contains(err.Error(), "completion order") {
		t.Errorf("want rank-order error, got %v", err)
	}
}

func TestValidateBroadcastDelivery(t *testing.T) {
	// On a bus, a single broadcast slot delivers to every processor.
	g := graph.New("g")
	_ = g.AddComp("A")
	_ = g.AddComp("B")
	_ = g.Connect("A", "B")
	a := arch.New("a")
	for _, p := range []string{"P1", "P2", "P3"} {
		_ = a.AddProcessor(p)
	}
	_ = a.AddBus("bus", "P1", "P2", "P3")
	sp := spec.New()
	for _, op := range []string{"A", "B"} {
		for _, p := range []string{"P1", "P2", "P3"} {
			_ = sp.SetExec(op, p, 1)
		}
	}
	_ = sp.SetComm(graph.EdgeKey{Src: "A", Dst: "B"}, "bus", 0.5)

	s := New(ModeFT1, 1)
	s.AddOpSlot(OpSlot{Op: "A", Proc: "P1", Replica: 0, Start: 0, End: 1})
	s.AddOpSlot(OpSlot{Op: "A", Proc: "P2", Replica: 1, Start: 0, End: 1})
	s.AddCommSlot(CommSlot{
		Edge: graph.EdgeKey{Src: "A", Dst: "B"}, Link: "bus",
		From: "P1", To: "", SrcProc: "P1", DstProc: "",
		TransferID: 0, Hop: 0, Start: 1, End: 1.5, Broadcast: true,
	})
	s.AddOpSlot(OpSlot{Op: "B", Proc: "P3", Replica: 0, Start: 1.5, End: 2.5})
	s.AddOpSlot(OpSlot{Op: "B", Proc: "P2", Replica: 1, Start: 1.5, End: 2.5})
	if err := s.Validate(g, a, sp); err != nil {
		t.Fatalf("broadcast delivery should validate: %v", err)
	}
}

func TestValidateMultiHopChain(t *testing.T) {
	// P1 - P2 - P3 chain; B on P3 receives A's value via two hops.
	g := graph.New("g")
	_ = g.AddComp("A")
	_ = g.AddComp("B")
	_ = g.Connect("A", "B")
	a := arch.New("a")
	for _, p := range []string{"P1", "P2", "P3"} {
		_ = a.AddProcessor(p)
	}
	_ = a.AddLink("L12", "P1", "P2")
	_ = a.AddLink("L23", "P2", "P3")
	sp := spec.New()
	for _, op := range []string{"A", "B"} {
		for _, p := range []string{"P1", "P2", "P3"} {
			_ = sp.SetExec(op, p, 1)
		}
	}
	e := graph.EdgeKey{Src: "A", Dst: "B"}
	_ = sp.SetComm(e, "L12", 0.5)
	_ = sp.SetComm(e, "L23", 0.5)

	s := New(ModeBasic, 0)
	s.AddOpSlot(OpSlot{Op: "A", Proc: "P1", Start: 0, End: 1})
	id := s.NewTransferID()
	s.AddCommSlot(CommSlot{Edge: e, Link: "L12", From: "P1", To: "P2",
		SrcProc: "P1", DstProc: "P3", TransferID: id, Hop: 0, Start: 1, End: 1.5})
	s.AddCommSlot(CommSlot{Edge: e, Link: "L23", From: "P2", To: "P3",
		SrcProc: "P1", DstProc: "P3", TransferID: id, Hop: 1, Start: 1.5, End: 2})
	s.AddOpSlot(OpSlot{Op: "B", Proc: "P3", Start: 2, End: 3})
	if err := s.Validate(g, a, sp); err != nil {
		t.Fatalf("multi-hop chain should validate: %v", err)
	}

	// Break the chain: second hop departs from the wrong processor.
	s2 := New(ModeBasic, 0)
	s2.AddOpSlot(OpSlot{Op: "A", Proc: "P1", Start: 0, End: 1})
	id2 := s2.NewTransferID()
	s2.AddCommSlot(CommSlot{Edge: e, Link: "L12", From: "P1", To: "P2",
		SrcProc: "P1", DstProc: "P3", TransferID: id2, Hop: 0, Start: 1, End: 1.5})
	s2.AddCommSlot(CommSlot{Edge: e, Link: "L23", From: "P3", To: "P3",
		SrcProc: "P1", DstProc: "P3", TransferID: id2, Hop: 1, Start: 1.5, End: 2})
	s2.AddOpSlot(OpSlot{Op: "B", Proc: "P3", Start: 2, End: 3})
	if err := s2.Validate(g, a, sp); err == nil {
		t.Fatal("broken hop chain must not validate")
	}

	// Causality violation along the chain.
	s3 := New(ModeBasic, 0)
	s3.AddOpSlot(OpSlot{Op: "A", Proc: "P1", Start: 0, End: 1})
	id3 := s3.NewTransferID()
	s3.AddCommSlot(CommSlot{Edge: e, Link: "L12", From: "P1", To: "P2",
		SrcProc: "P1", DstProc: "P3", TransferID: id3, Hop: 0, Start: 1, End: 1.5})
	s3.AddCommSlot(CommSlot{Edge: e, Link: "L23", From: "P2", To: "P3",
		SrcProc: "P1", DstProc: "P3", TransferID: id3, Hop: 1, Start: 1.2, End: 1.7})
	s3.AddOpSlot(OpSlot{Op: "B", Proc: "P3", Start: 2, End: 3})
	if err := s3.Validate(g, a, sp); err == nil {
		t.Fatal("hop starting before previous hop ends must not validate")
	}
}

func TestGanttAndTable(t *testing.T) {
	f := newFixture(t)
	s := validBasic(f)
	gantt := s.Gantt()
	for _, frag := range []string{"basic schedule", "makespan=3.5", "P1", "A*", "A->B"} {
		if !strings.Contains(gantt, frag) {
			t.Errorf("Gantt missing %q:\n%s", frag, gantt)
		}
	}
	table := s.Table()
	for _, frag := range []string{"op A replica 0 (main)", "comm A->B P1->P2", "1.5\t3.5\tP2"} {
		if !strings.Contains(table, frag) {
			t.Errorf("Table missing %q:\n%s", frag, table)
		}
	}
	// Passive slots render with their timeout.
	s.AddCommSlot(CommSlot{Edge: graph.EdgeKey{Src: "A", Dst: "B"}, Link: "L",
		From: "P2", To: "P1", SrcProc: "P2", DstProc: "P1", SenderRank: 1,
		TransferID: s.NewTransferID(), Start: 2, End: 2.5, Passive: true, Timeout: 2})
	if !strings.Contains(s.Gantt(), "t/o 2") {
		t.Error("Gantt should render passive timeouts")
	}
	if !strings.Contains(s.Table(), "[passive, timeout 2]") {
		t.Error("Table should render passive timeouts")
	}
}

func TestFmtTime(t *testing.T) {
	cases := map[float64]string{0: "0", 1.5: "1.5", 2: "2", 9.4: "9.4", 0.125: "0.125"}
	for in, want := range cases {
		if got := fmtTime(in); got != want {
			t.Errorf("fmtTime(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestValidateReportsViolationsDeterministically(t *testing.T) {
	f := newFixture(t)
	build := func() *Schedule {
		// Several independent violations at once: B unscheduled, A on a
		// forbidden duration, and a slot on an unknown processor.
		s := New(ModeBasic, 0)
		s.AddOpSlot(OpSlot{Op: "A", Proc: "P1", Start: 0, End: 3})
		s.AddOpSlot(OpSlot{Op: "A", Proc: "P9", Start: 0, End: 1})
		return s
	}
	first := build().Validate(f.g, f.a, f.sp)
	if first == nil {
		t.Fatal("invalid schedule accepted")
	}
	for i := 0; i < 20; i++ {
		err := build().Validate(f.g, f.a, f.sp)
		if err == nil || err.Error() != first.Error() {
			t.Fatalf("validation message changed between runs:\n%v\nvs\n%v", first, err)
		}
	}
	lines := strings.Split(first.Error(), "\n  ")[1:]
	if !sort.StringsAreSorted(lines) {
		t.Errorf("violations not sorted:\n%v", first)
	}
	if len(lines) < 2 {
		t.Fatalf("fixture should trip several violations, got %d:\n%v", len(lines), first)
	}
}
