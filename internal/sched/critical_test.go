package sched

import (
	"strings"
	"testing"

	"ftsched/internal/graph"
)

func TestCriticalChainBasic(t *testing.T) {
	f := newFixture(t)
	s := validBasic(f)
	chain := s.CriticalChain()
	if len(chain) != 3 {
		t.Fatalf("chain = %v", chain)
	}
	// A on P1 -> comm A->B -> B on P2, earliest first.
	if chain[0].What != "A" || chain[0].Kind != "op" || chain[0].Constraint != "source" {
		t.Errorf("chain[0] = %+v", chain[0])
	}
	if chain[1].What != "A->B" || chain[1].Kind != "comm" || chain[1].Constraint != "data" {
		t.Errorf("chain[1] = %+v", chain[1])
	}
	if chain[2].What != "B" || chain[2].Constraint != "data" {
		t.Errorf("chain[2] = %+v", chain[2])
	}
	if chain[2].End != s.Makespan() {
		t.Error("chain must end at the makespan")
	}
	rendered := RenderChain(chain)
	for _, frag := range []string{"op   A", "comm A->B", "(data)"} {
		if !strings.Contains(rendered, frag) {
			t.Errorf("render missing %q:\n%s", frag, rendered)
		}
	}
}

func TestCriticalChainSequenceConstraint(t *testing.T) {
	// Two independent ops back to back on one processor: the second's chain
	// binder is the sequence, not data.
	g := graph.New("g")
	_ = g.AddComp("A")
	_ = g.AddComp("B")
	s := New(ModeBasic, 0)
	s.AddOpSlot(OpSlot{Op: "A", Proc: "P1", Start: 0, End: 1})
	s.AddOpSlot(OpSlot{Op: "B", Proc: "P1", Start: 1, End: 3})
	chain := s.CriticalChain()
	if len(chain) != 2 {
		t.Fatalf("chain = %v", chain)
	}
	if chain[1].Constraint != "sequence" {
		t.Errorf("chain[1] = %+v", chain[1])
	}
}

func TestCriticalChainEmpty(t *testing.T) {
	if chain := New(ModeBasic, 0).CriticalChain(); chain != nil {
		t.Errorf("empty schedule chain = %v", chain)
	}
}

func TestCriticalChainCoversMakespanGaplessly(t *testing.T) {
	// On the validBasic fixture the chain is contiguous: each element
	// starts where the previous ended.
	f := newFixture(t)
	s := validBasic(f)
	chain := s.CriticalChain()
	for i := 1; i < len(chain); i++ {
		if !timeEq(chain[i-1].End, chain[i].Start) {
			t.Errorf("gap between %+v and %+v", chain[i-1], chain[i])
		}
	}
}
