package sched

import (
	"fmt"
	"sort"
	"strings"
)

// Gantt renders the schedule as a deterministic text timing diagram in the
// style of the paper's figures: one line per resource, slots in time order.
// Main replicas are marked with '*', passive (timeout-guarded) transfers are
// bracketed with '(...)'.
//
//	P1   | [0.0,1.0] I*        | [1.0,3.0] A*
//	bus  | [3.0,3.5] A->B P1=>*
func (s *Schedule) Gantt() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s schedule, K=%d, makespan=%s\n", s.Mode, s.K, fmtTime(s.Makespan()))
	for _, p := range s.Procs() {
		fmt.Fprintf(&b, "%-6s", p)
		for _, sl := range s.ProcSlots(p) {
			mark := ""
			if sl.Main() {
				mark = "*"
			}
			fmt.Fprintf(&b, " | [%s,%s] %s%s", fmtTime(sl.Start), fmtTime(sl.End), sl.Op, mark)
		}
		b.WriteByte('\n')
	}
	for _, l := range s.Links() {
		fmt.Fprintf(&b, "%-6s", l)
		for _, c := range s.LinkSlots(l) {
			dst := c.DstProc
			if c.Broadcast {
				dst = "*"
			}
			entry := fmt.Sprintf("[%s,%s] %s %s=>%s", fmtTime(c.Start), fmtTime(c.End), c.Edge, c.From, dst)
			if c.Passive {
				entry = "(" + entry + fmt.Sprintf(" t/o %s)", fmtTime(c.Timeout))
			}
			b.WriteString(" | " + entry)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table renders the schedule as a flat, sortable table: one row per op slot
// and per comm slot, ordered by start date then resource name. Useful for
// diffing schedules in tests and experiment logs.
func (s *Schedule) Table() string {
	type row struct {
		start, end float64
		res, what  string
	}
	var rows []row
	for _, p := range s.Procs() {
		for _, sl := range s.ProcSlots(p) {
			what := fmt.Sprintf("op %s replica %d", sl.Op, sl.Replica)
			if sl.Main() {
				what += " (main)"
			}
			rows = append(rows, row{sl.Start, sl.End, p, what})
		}
	}
	for _, l := range s.Links() {
		for _, c := range s.LinkSlots(l) {
			what := fmt.Sprintf("comm %s %s->%s", c.Edge, c.From, c.To)
			if c.Broadcast {
				what = fmt.Sprintf("comm %s %s->all", c.Edge, c.From)
			}
			if c.Passive {
				what += fmt.Sprintf(" [passive, timeout %s]", fmtTime(c.Timeout))
			}
			rows = append(rows, row{c.Start, c.End, l, what})
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].start != rows[j].start {
			return rows[i].start < rows[j].start
		}
		return rows[i].res < rows[j].res
	})
	var b strings.Builder
	b.WriteString("start\tend\tresource\tactivity\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s\t%s\t%s\t%s\n", fmtTime(r.start), fmtTime(r.end), r.res, r.what)
	}
	return b.String()
}

func fmtTime(t float64) string {
	out := strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", t), "0"), ".")
	if out == "" || out == "-" {
		return "0"
	}
	return out
}
