package sched

import (
	"fmt"
	"strings"
)

// ChainElem is one activity on a schedule's critical chain.
type ChainElem struct {
	// Kind is "op" or "comm".
	Kind string
	// What is the operation name or dependency.
	What string
	// Where is the processor or link.
	Where string
	// Start and End are the activity's dates.
	Start, End float64
	// Constraint says what pinned this activity's start date: "source"
	// (starts at 0 or nothing earlier binds it), "sequence" (the previous
	// activity on the same resource), or "data" (an input arrival).
	Constraint string
}

// CriticalChain walks backward from the schedule's last-finishing activity
// through the constraints that pin each start date, yielding the chain of
// activities that determines the makespan (earliest first). Shortening any
// element of the chain would shorten the schedule; elements whose
// constraint is "sequence" on a link expose communication-medium
// contention.
func (s *Schedule) CriticalChain() []ChainElem {
	last := s.lastActivity()
	if last == nil {
		return nil
	}
	var rev []ChainElem
	cur := last
	for cur != nil && len(rev) <= 4*(s.NumOpSlots()+s.NumActiveComms())+4 {
		next := s.binder(cur) // fills in cur.Constraint
		rev = append(rev, *cur)
		cur = next
	}
	out := make([]ChainElem, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// lastActivity returns the activity with the latest end date.
func (s *Schedule) lastActivity() *ChainElem {
	var best *ChainElem
	for _, p := range s.Procs() {
		for _, sl := range s.ProcSlots(p) {
			if best == nil || sl.End > best.End {
				best = &ChainElem{Kind: "op", What: sl.Op, Where: p, Start: sl.Start, End: sl.End}
			}
		}
	}
	for _, l := range s.Links() {
		for _, c := range s.LinkSlots(l) {
			if c.Passive {
				continue
			}
			if best == nil || c.End > best.End {
				best = &ChainElem{Kind: "comm", What: c.Edge.String(), Where: l, Start: c.Start, End: c.End}
			}
		}
	}
	return best
}

// binder finds the activity whose end pins cur's start, setting
// cur.Constraint as a side effect. Returns nil at a source activity.
func (s *Schedule) binder(cur *ChainElem) *ChainElem {
	if cur.Start <= timeTolerance {
		cur.Constraint = "source"
		return nil
	}
	// Sequence constraint: the previous activity on the same resource ends
	// exactly at cur.Start.
	if cur.Kind == "op" {
		for _, sl := range s.ProcSlots(cur.Where) {
			if timeEq(sl.End, cur.Start) && !(sl.Op == cur.What && timeEq(sl.Start, cur.Start)) {
				cur.Constraint = "sequence"
				return &ChainElem{Kind: "op", What: sl.Op, Where: cur.Where, Start: sl.Start, End: sl.End}
			}
		}
		// Data constraint: an active transfer delivering at cur.Start.
		for _, l := range s.Links() {
			for _, c := range s.LinkSlots(l) {
				if c.Passive || !timeEq(c.End, cur.Start) {
					continue
				}
				cur.Constraint = "data"
				return &ChainElem{Kind: "comm", What: c.Edge.String(), Where: l, Start: c.Start, End: c.End}
			}
		}
		// Local data: a replica on the same processor ending at cur.Start
		// was already covered by the sequence case; anything else is an
		// unexplained gap (idle waiting absorbed into start).
		cur.Constraint = "source"
		return nil
	}
	// cur is a comm: its start is pinned by the previous transfer on the
	// link, by the producing operation, or by the previous hop.
	for _, c := range s.LinkSlots(cur.Where) {
		if c.Passive {
			continue
		}
		if timeEq(c.End, cur.Start) {
			cur.Constraint = "sequence"
			return &ChainElem{Kind: "comm", What: c.Edge.String(), Where: cur.Where, Start: c.Start, End: c.End}
		}
	}
	for _, p := range s.Procs() {
		for _, sl := range s.ProcSlots(p) {
			if timeEq(sl.End, cur.Start) {
				cur.Constraint = "data"
				return &ChainElem{Kind: "op", What: sl.Op, Where: p, Start: sl.Start, End: sl.End}
			}
		}
	}
	for _, l := range s.Links() {
		if l == cur.Where {
			continue
		}
		for _, c := range s.LinkSlots(l) {
			if c.Passive {
				continue
			}
			if timeEq(c.End, cur.Start) {
				cur.Constraint = "data"
				return &ChainElem{Kind: "comm", What: c.Edge.String(), Where: l, Start: c.Start, End: c.End}
			}
		}
	}
	cur.Constraint = "source"
	return nil
}

const timeTolerance = 1e-6

// RenderChain prints the critical chain one activity per line.
func RenderChain(chain []ChainElem) string {
	var b strings.Builder
	for _, el := range chain {
		fmt.Fprintf(&b, "[%7.3f - %7.3f] %-4s %-14s on %-6s (%s)\n",
			el.Start, el.End, el.Kind, el.What, el.Where, el.Constraint)
	}
	return b.String()
}
