package sched_test

import (
	"math"
	"testing"

	"ftsched/internal/core"
	"ftsched/internal/paperex"
)

func TestDeliveriesFT1BusChains(t *testing.T) {
	in := paperex.BusInstance()
	res, err := core.ScheduleFT1(in.Graph, in.Arch, in.Spec, in.K, core.Options{})
	if err != nil {
		t.Fatalf("ScheduleFT1: %v", err)
	}
	s := res.Schedule
	ds := s.Deliveries()
	if len(ds) == 0 {
		t.Fatalf("no deliveries in FT1 bus schedule")
	}
	nTransfers := len(s.Transfers())
	nSenders := 0
	for _, d := range ds {
		if !d.Chain {
			t.Errorf("FT1 delivery of %v is not a failover chain", d.Edge)
		}
		for i, sd := range d.Senders {
			nSenders++
			if i > 0 && sd.Rank < d.Senders[i-1].Rank {
				t.Errorf("delivery of %v: senders out of rank order", d.Edge)
			}
			if math.IsInf(sd.Deadline, 1) {
				t.Errorf("delivery of %v: FT1 sender rank %d has no deadline", d.Edge, sd.Rank)
			}
			last := sd.Hops[len(sd.Hops)-1]
			if sd.Deadline != last.End {
				t.Errorf("delivery of %v rank %d: deadline %g != static last-hop end %g",
					d.Edge, sd.Rank, sd.Deadline, last.End)
			}
			if sd.Proc != sd.Hops[0].SrcProc {
				t.Errorf("delivery of %v rank %d: sender proc %s != hop-0 source %s",
					d.Edge, sd.Rank, sd.Proc, sd.Hops[0].SrcProc)
			}
		}
		if d.Broadcast {
			rcv := d.Receivers(in.Arch)
			if len(rcv) != 3 {
				t.Errorf("broadcast delivery of %v reaches %v, want all 3 bus processors", d.Edge, rcv)
			}
		} else if d.Dst == "" {
			t.Errorf("point-to-point delivery of %v has no destination", d.Edge)
		}
	}
	if nSenders != nTransfers {
		t.Errorf("deliveries hold %d senders, schedule has %d transfers", nSenders, nTransfers)
	}
}

func TestDeliveriesFT2TriangleIndependentSenders(t *testing.T) {
	in := paperex.TriangleInstance()
	res, err := core.ScheduleFT2(in.Graph, in.Arch, in.Spec, in.K, core.Options{})
	if err != nil {
		t.Fatalf("ScheduleFT2: %v", err)
	}
	for _, d := range res.Schedule.Deliveries() {
		if d.Chain {
			t.Errorf("FT2 delivery of %v marked as failover chain", d.Edge)
		}
		for _, sd := range d.Senders {
			if sd.Passive {
				t.Errorf("FT2 delivery of %v has a passive sender (rank %d)", d.Edge, sd.Rank)
			}
			if !math.IsInf(sd.Deadline, 1) {
				t.Errorf("FT2 delivery of %v rank %d carries a deadline %g, want +Inf",
					d.Edge, sd.Rank, sd.Deadline)
			}
			if sd.Duration() <= 0 {
				t.Errorf("FT2 delivery of %v rank %d: non-positive duration %g", d.Edge, sd.Rank, sd.Duration())
			}
		}
	}
}

func TestDeliveriesMultiHopForwarders(t *testing.T) {
	in := paperex.TriangleInstance()
	res, err := core.ScheduleFT2(in.Graph, in.Arch, in.Spec, in.K, core.Options{})
	if err != nil {
		t.Fatalf("ScheduleFT2: %v", err)
	}
	for _, d := range res.Schedule.Deliveries() {
		for _, sd := range d.Senders {
			fw := sd.ForwardProcs()
			if len(fw) != len(sd.Hops)-1 {
				t.Errorf("delivery of %v rank %d: %d forwarders for %d hops",
					d.Edge, sd.Rank, len(fw), len(sd.Hops))
			}
			for i, f := range fw {
				if f != sd.Hops[i+1].From {
					t.Errorf("delivery of %v rank %d: forwarder %d is %s, want hop %d origin %s",
						d.Edge, sd.Rank, i, f, i+1, sd.Hops[i+1].From)
				}
			}
		}
	}
}
