package sched

import (
	"fmt"
	"sort"
	"strings"

	"ftsched/internal/arch"
	"ftsched/internal/graph"
	"ftsched/internal/spec"
)

// Validate checks that the schedule is a well-formed implementation of the
// algorithm g on the architecture a under the constraints sp, with the
// data-availability semantics of its Mode. It returns a single error
// aggregating every violation found.
func (s *Schedule) Validate(g *graph.Graph, a *arch.Architecture, sp *spec.Spec) error {
	v := &validator{s: s, g: g, a: a, sp: sp}
	v.index()
	v.checkReplication()
	v.checkOpSlots()
	v.checkProcSequencing()
	v.checkLinkSequencing()
	v.checkTransfers()
	v.checkDataAvailability()
	v.checkPassiveTimeouts()
	v.checkFT2CommReplication()
	if len(v.errs) == 0 {
		return nil
	}
	// Sort the aggregated violations so the error reads the same across
	// runs: several checks walk map-backed collections whose iteration
	// order would otherwise leak into the message.
	sort.Strings(v.errs)
	return fmt.Errorf("schedule (%s, K=%d) invalid:\n  %s", s.Mode, s.K, strings.Join(v.errs, "\n  "))
}

type validator struct {
	s    *Schedule
	g    *graph.Graph
	a    *arch.Architecture
	sp   *spec.Spec
	errs []string

	transfers [][]*CommSlot               // cached s.Transfers()
	replicaOn map[[2]string]*OpSlot       // (op, proc) -> slot
	delivered map[deliveryKey][]*CommSlot // active final hops per (edge, proc)
}

type deliveryKey struct {
	edge graph.EdgeKey
	proc string
}

// index precomputes the lookups the per-slot checks need, keeping the
// validator linear in the schedule size.
func (v *validator) index() {
	v.transfers = v.s.Transfers()
	v.replicaOn = make(map[[2]string]*OpSlot, v.s.NumOpSlots())
	for _, p := range v.s.Procs() {
		for _, sl := range v.s.ProcSlots(p) {
			v.replicaOn[[2]string{sl.Op, p}] = sl
		}
	}
	v.delivered = make(map[deliveryKey][]*CommSlot)
	for _, hops := range v.transfers {
		last := hops[len(hops)-1]
		if last.Passive {
			continue
		}
		if last.DstProc != "" {
			key := deliveryKey{edge: last.Edge, proc: last.DstProc}
			v.delivered[key] = append(v.delivered[key], last)
			continue
		}
		if last.Broadcast {
			if l := v.a.Link(last.Link); l != nil {
				for _, p := range l.Endpoints() {
					key := deliveryKey{edge: last.Edge, proc: p}
					v.delivered[key] = append(v.delivered[key], last)
				}
			}
		}
	}
}

func (v *validator) errorf(format string, args ...any) {
	v.errs = append(v.errs, fmt.Sprintf(format, args...))
}

// checkReplication verifies the replica structure required by the mode.
func (v *validator) checkReplication() {
	for _, op := range v.g.OpNames() {
		reps := v.s.Replicas(op)
		if len(reps) == 0 {
			v.errorf("operation %q is not scheduled", op)
			continue
		}
		want := 1
		if v.s.Mode != ModeBasic {
			want = v.s.K + 1
			if allowed := len(v.sp.AllowedProcs(op)); allowed < want {
				want = allowed
			}
		}
		if len(reps) != want {
			v.errorf("operation %q has %d replicas, want %d", op, len(reps), want)
		}
		procs := map[string]bool{}
		for i, r := range reps {
			if r.Replica != i {
				v.errorf("operation %q: replica ranks not contiguous (%d at position %d)", op, r.Replica, i)
			}
			if procs[r.Proc] {
				v.errorf("operation %q has two replicas on processor %q", op, r.Proc)
			}
			procs[r.Proc] = true
		}
		for i := 1; i < len(reps); i++ {
			if !timeLE(reps[i-1].End, reps[i].End) {
				v.errorf("operation %q: replica %d ends at %g after replica %d at %g; ranks must follow completion order",
					op, i-1, reps[i-1].End, i, reps[i].End)
			}
		}
	}
}

// checkOpSlots verifies placement legality and durations.
func (v *validator) checkOpSlots() {
	for _, p := range v.s.Procs() {
		if !v.a.HasProcessor(p) {
			v.errorf("slot on unknown processor %q", p)
			continue
		}
		for _, sl := range v.s.ProcSlots(p) {
			if !v.g.HasOp(sl.Op) {
				v.errorf("slot for unknown operation %q on %q", sl.Op, p)
				continue
			}
			if sl.Start < -1e-9 {
				v.errorf("operation %q on %q starts at %g < 0", sl.Op, p, sl.Start)
			}
			d := v.sp.Exec(sl.Op, p)
			if !v.sp.CanRun(sl.Op, p) {
				v.errorf("operation %q scheduled on forbidden processor %q", sl.Op, p)
			} else if !timeEq(sl.Duration(), d) {
				v.errorf("operation %q on %q lasts %g, spec says %g", sl.Op, p, sl.Duration(), d)
			}
		}
	}
}

// checkProcSequencing verifies each computation unit runs one op at a time.
func (v *validator) checkProcSequencing() {
	for _, p := range v.s.Procs() {
		slots := v.s.ProcSlots(p)
		for i := 1; i < len(slots); i++ {
			if !timeLE(slots[i-1].End, slots[i].Start) {
				v.errorf("processor %q: %q [%g,%g] overlaps %q [%g,%g]",
					p, slots[i-1].Op, slots[i-1].Start, slots[i-1].End,
					slots[i].Op, slots[i].Start, slots[i].End)
			}
		}
	}
}

// checkLinkSequencing verifies active comms are serialized per link, as
// imposed by the link arbiter (Section 4.3).
func (v *validator) checkLinkSequencing() {
	for _, l := range v.s.Links() {
		if v.a.Link(l) == nil {
			v.errorf("comm slot on unknown link %q", l)
			continue
		}
		var active []*CommSlot
		for _, c := range v.s.LinkSlots(l) {
			if !c.Passive {
				active = append(active, c)
			}
		}
		for i := 1; i < len(active); i++ {
			if !timeLE(active[i-1].End, active[i].Start) {
				v.errorf("link %q: transfer %s [%g,%g] overlaps %s [%g,%g]",
					l, active[i-1].Edge, active[i-1].Start, active[i-1].End,
					active[i].Edge, active[i].Start, active[i].End)
			}
		}
	}
}

// checkTransfers verifies hop chains: correct endpoints, durations, and
// causality along multi-hop routes, and that hop 0 starts after the sending
// replica has produced the data.
func (v *validator) checkTransfers() {
	for _, hops := range v.transfers {
		first := hops[0]
		if first.Hop != 0 {
			v.errorf("transfer %d of %s: first hop has index %d", first.TransferID, first.Edge, first.Hop)
			continue
		}
		if first.From != first.SrcProc {
			v.errorf("transfer %d of %s: hop 0 starts at %q, not at source processor %q",
				first.TransferID, first.Edge, first.From, first.SrcProc)
		}
		sender := v.replicaOn[[2]string{first.Edge.Src, first.SrcProc}]
		if sender == nil {
			v.errorf("transfer %d of %s: no replica of %q on source processor %q",
				first.TransferID, first.Edge, first.Edge.Src, first.SrcProc)
		} else if !timeLE(sender.End, first.Start) {
			v.errorf("transfer %d of %s: hop 0 starts at %g before producer ends at %g",
				first.TransferID, first.Edge, first.Start, sender.End)
		}
		for i, c := range hops {
			if c.Hop != i {
				v.errorf("transfer %d of %s: hop indices not contiguous", c.TransferID, c.Edge)
				break
			}
			link := v.a.Link(c.Link)
			if link == nil {
				continue // reported by checkLinkSequencing
			}
			if !link.Connects(c.From) {
				v.errorf("transfer %d of %s: hop %d uses link %q not attached to sender %q",
					c.TransferID, c.Edge, i, c.Link, c.From)
			}
			// A broadcast has no single To; every processor on the bus
			// receives the value.
			if !c.Broadcast && !link.Connects(c.To) {
				v.errorf("transfer %d of %s: hop %d uses link %q not attached to receiver %q",
					c.TransferID, c.Edge, i, c.Link, c.To)
			}
			if d, err := v.sp.Comm(c.Edge, c.Link); err != nil {
				v.errorf("transfer %d: %v", c.TransferID, err)
			} else if !timeEq(c.Duration(), d) {
				v.errorf("transfer %d of %s: hop %d lasts %g, spec says %g on %q",
					c.TransferID, c.Edge, i, c.Duration(), d, c.Link)
			}
			if i > 0 {
				prev := hops[i-1]
				if prev.To != c.From {
					v.errorf("transfer %d of %s: hop %d starts at %q but hop %d ended at %q",
						c.TransferID, c.Edge, i, c.From, i-1, prev.To)
				}
				if !timeLE(prev.End, c.Start) {
					v.errorf("transfer %d of %s: hop %d starts at %g before hop %d ends at %g",
						c.TransferID, c.Edge, i, c.Start, i-1, prev.End)
				}
			}
		}
		last := hops[len(hops)-1]
		if last.DstProc != "" && last.To != last.DstProc {
			v.errorf("transfer %d of %s: final hop reaches %q, not destination %q",
				last.TransferID, last.Edge, last.To, last.DstProc)
		}
	}
}

// arrivalAt returns the earliest failure-free availability date of edge's
// value on proc, and whether it is available at all. Local availability (a
// replica of the producer on proc) wins over any transfer.
func (v *validator) arrivalAt(e graph.EdgeKey, proc string, consumer *OpSlot) (float64, bool) {
	if local := v.replicaOn[[2]string{e.Src, proc}]; local != nil {
		return local.End, true
	}
	best := 0.0
	found := false
	for _, last := range v.delivered[deliveryKey{edge: e, proc: proc}] {
		if !found || last.End < best {
			best = last.End
			found = true
		}
	}
	_ = consumer
	return best, found
}

// checkPassiveTimeouts verifies the structure of FT1's timeout chains: a
// passive reservation only exists in ModeFT1, is sent by a backup rank, and
// activates no earlier than its failover deadline.
func (v *validator) checkPassiveTimeouts() {
	for _, l := range v.s.Links() {
		for _, c := range v.s.LinkSlots(l) {
			if !c.Passive {
				continue
			}
			if v.s.Mode != ModeFT1 {
				v.errorf("passive transfer of %s in a %s schedule", c.Edge, v.s.Mode)
			}
			if c.SenderRank < 1 {
				v.errorf("passive transfer of %s has sender rank %d, want >= 1", c.Edge, c.SenderRank)
			}
			if c.Hop == 0 && c.Start < c.Timeout-1e-9 {
				v.errorf("passive transfer of %s starts at %g before its failover deadline %g",
					c.Edge, c.Start, c.Timeout)
			}
		}
	}
}

// checkFT2CommReplication verifies Section 7.1's communication scheme: in
// an FT2 schedule, a consumer replica colocated with any replica of its
// producer receives no transfers at all for that dependency; otherwise it
// receives one transfer from every replica of the producer.
func (v *validator) checkFT2CommReplication() {
	if v.s.Mode != ModeFT2 {
		return
	}
	// senders[edge][dstProc] = set of source processors with a transfer.
	senders := map[graph.EdgeKey]map[string]map[string]bool{}
	for _, hops := range v.transfers {
		last := hops[len(hops)-1]
		if last.DstProc == "" {
			continue
		}
		byDst, ok := senders[last.Edge]
		if !ok {
			byDst = map[string]map[string]bool{}
			senders[last.Edge] = byDst
		}
		if byDst[last.DstProc] == nil {
			byDst[last.DstProc] = map[string]bool{}
		}
		byDst[last.DstProc][last.SrcProc] = true
	}
	for _, e := range v.g.Edges() {
		if e.Delayed() {
			continue // state updates are delivered, not start-constraining
		}
		prodProcs := map[string]bool{}
		for _, rep := range v.s.Replicas(e.Src()) {
			prodProcs[rep.Proc] = true
		}
		for _, cons := range v.s.Replicas(e.Dst()) {
			got := len(senders[e.Key()][cons.Proc])
			if prodProcs[cons.Proc] {
				if got != 0 {
					v.errorf("FT2: consumer of %s on %q is colocated with a producer replica but receives %d transfers",
						e.Key(), cons.Proc, got)
				}
				continue
			}
			if got != len(prodProcs) {
				v.errorf("FT2: consumer of %s on %q receives from %d senders, want %d (one per producer replica)",
					e.Key(), cons.Proc, got, len(prodProcs))
			}
		}
	}
}

// checkDataAvailability verifies that every replica starts only after each
// of its (non-delayed) inputs is available on its processor under the mode's
// semantics.
func (v *validator) checkDataAvailability() {
	for _, p := range v.s.Procs() {
		for _, sl := range v.s.ProcSlots(p) {
			if !v.g.HasOp(sl.Op) {
				continue
			}
			for _, pred := range v.g.StrictPreds(sl.Op) {
				e := graph.EdgeKey{Src: pred, Dst: sl.Op}
				at, ok := v.arrivalAt(e, p, sl)
				if !ok {
					v.errorf("operation %q on %q never receives input %s", sl.Op, p, e)
					continue
				}
				if !timeLE(at, sl.Start) {
					v.errorf("operation %q on %q starts at %g before input %s arrives at %g",
						sl.Op, p, sl.Start, e, at)
				}
			}
		}
	}
}
