package ftsched_test

import (
	"math/rand"
	"testing"

	"ftsched/internal/core"
	"ftsched/internal/sim"
	"ftsched/internal/workload"
)

// TestScaleLargeInstance pushes the whole pipeline through a 400-operation
// problem on 8 processors: schedule, validate, and simulate a mid-run crash.
// Guards against super-linear blowups in the heuristics and the simulator.
func TestScaleLargeInstance(t *testing.T) {
	if testing.Short() {
		t.Skip("large instance is slow")
	}
	r := rand.New(rand.NewSource(2024))
	in, err := workload.RandomInstance(r, 400, 8, true, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.ScheduleFT1(in.Graph, in.Arch, in.Spec, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(in.Graph, in.Arch, in.Spec); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	free, err := sim.Simulate(res.Schedule, in.Graph, in.Arch, in.Spec, sim.Scenario{}, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !free.Iterations[0].Completed {
		t.Fatal("failure-free run incomplete")
	}
	if diff := free.Iterations[0].End - res.Schedule.Makespan(); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("simulated end %v != static %v", free.Iterations[0].End, res.Schedule.Makespan())
	}
	crash, err := sim.Simulate(res.Schedule, in.Graph, in.Arch, in.Spec,
		sim.Single("P3", 0, res.Schedule.Makespan()/2), sim.Config{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, ir := range crash.Iterations {
		if !ir.Completed {
			t.Errorf("iteration %d lost outputs under the crash", ir.Index)
		}
	}
}
